package storage

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"scdb/internal/model"
)

// TestIngestDuringCheckpoint is the lost-write regression test: writers
// hammer the store while checkpoints run concurrently, and the reopened
// state must be byte-identical to the live state. The old single-file
// Checkpoint truncated the log after its snapshot, silently dropping any
// commit that raced between the snapshot read and the Truncate(0). Run
// under -race.
func TestIngestDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so checkpoints overlap rotations too.
	s, err := OpenOptions(dir, Options{Sync: SyncGroup, SegmentBytes: 4096, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	const nWriters, nOps = 6, 120
	tables := make([]*Table, 3)
	for i := range tables {
		tables[i], err = s.CreateTable(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, nWriters)
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tb := tables[g%len(tables)]
			var mine []RowID
			for i := 0; i < nOps; i++ {
				switch {
				case i%11 == 10 && len(mine) > 0:
					if err := tb.Delete(mine[0]); err != nil {
						errs <- err
						return
					}
					mine = mine[1:]
				case i%5 == 4 && len(mine) > 0:
					if err := tb.Update(mine[len(mine)-1], mkRec(g*10000+i)); err != nil {
						errs <- err
						return
					}
				case i%7 == 6:
					ids, err := tb.InsertBatch([]model.Record{mkRec(g*10000 + i), mkRec(g*10000 + i + 5000)})
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, ids...)
				default:
					id, err := tb.Insert(mkRec(g*10000 + i))
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, id)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ckpts := 0
	for {
		if err := s.Checkpoint(); err != nil {
			t.Error(err)
			break
		}
		ckpts++
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}
	if ckpts == 0 {
		t.Fatal("no checkpoint ran")
	}
	want := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery after concurrent checkpoints: %v", err)
	}
	defer re.Close()
	if got := dumpStore(t, re); got != want {
		t.Fatalf("recovered state differs from live state:\n%s\nvs\n%s", got, want)
	}
}

// TestSegmentRotationAndRetention: appends rotate the log into multiple
// segment files, a checkpoint deletes the sealed ones below its horizon,
// and the store survives reopen at every stage.
func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{Sync: SyncAlways, SegmentBytes: 256, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.WALStats()
	if st.Segments < 3 || st.SegmentIndex < 3 {
		t.Fatalf("expected several segments, got Segments=%d SegmentIndex=%d", st.Segments, st.SegmentIndex)
	}
	if segs, _ := listSegments(dir); len(segs) != st.Segments {
		t.Fatalf("on-disk segments %d != stats %d", len(segs), st.Segments)
	}

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = s.WALStats()
	if st.Checkpoints != 1 || st.CheckpointCSN == 0 {
		t.Fatalf("checkpoint stats: %+v", st)
	}
	if st.CheckpointReclaimed == 0 {
		t.Fatal("checkpoint reclaimed no sealed segments")
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 || segs[0] != st.SegmentIndex {
		t.Fatalf("retention kept %v, want only active segment %d", segs, st.SegmentIndex)
	}

	for i := 100; i < 150; i++ {
		if _, err := tb.Insert(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dumpStore(t, re); got != want {
		t.Fatalf("recovered state differs:\n%s\nvs\n%s", got, want)
	}
	if re.WALStats().RecoveryTime <= 0 {
		t.Error("RecoveryTime not recorded")
	}
}

// TestAutoCheckpointTriggers: crossing CheckpointBytes makes the
// background checkpointer run without any manual call.
func TestAutoCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{Sync: SyncAlways, CheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("t")
	for i := 0; i < 2000 && s.WALStats().Checkpoints == 0; i++ {
		if _, err := tb.Insert(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpointer is asynchronous: give it a moment after the kick.
	for i := 0; i < 400 && s.WALStats().Checkpoints == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if s.WALStats().Checkpoints == 0 {
		t.Fatal("auto checkpoint never ran")
	}
	want := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dumpStore(t, re); got != want {
		t.Fatal("recovered state differs after auto checkpoint")
	}
}

// TestRecoverParallelismEquivalence: recovered state is identical whether
// replay/rebuild run serially or fanned out.
func TestRecoverParallelismEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{Sync: SyncAlways, SegmentBytes: 512, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 4; ti++ {
		tb, err := s.CreateTable(string(rune('a' + ti)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			id, _ := tb.Insert(mkRec(ti*1000 + i))
			if i%5 == 4 {
				tb.Update(id, mkRec(ti*1000+i+100))
			}
			if i%9 == 8 {
				tb.Delete(id)
			}
		}
		if ti == 1 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var dumps []string
	for _, par := range []int{1, 4} {
		re, err := OpenOptions(dir, Options{RecoverParallelism: par, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		dumps = append(dumps, dumpStore(t, re))
		re.Close()
	}
	if dumps[0] != dumps[1] {
		t.Fatalf("serial and parallel recovery disagree:\n%s\nvs\n%s", dumps[0], dumps[1])
	}
}

// TestCheckpointSegmentCrashDifferential extends the truncation
// differential across checkpoint and rotation boundaries: with small
// segments and two mid-run checkpoints, cut any surviving segment at
// arbitrary offsets (later segments left in place), and recovery must land
// on a whole-batch oracle state. Also covers a crash mid-rotation (partial
// or header-only new segment) and a crash mid-snapshot (stale .tmp).
func TestCheckpointSegmentCrashDifferential(t *testing.T) {
	const batchSize, nBatches = 6, 12
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{Sync: SyncAlways, SegmentBytes: 512, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("t")
	oracle, _ := Open("")
	ot, _ := oracle.CreateTable("t")
	states := []string{dumpStore(t, oracle)}
	next := 0
	for b := 0; b < nBatches; b++ {
		recs := make([]model.Record, batchSize)
		for i := range recs {
			recs[i] = mkRec(next)
			next++
		}
		if _, err := tb.InsertBatch(recs); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := ot.Insert(rec); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, dumpStore(t, oracle))
		if b == 3 || b == 7 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Capture the post-close image: snapshot + surviving segments.
	files := map[string][]byte{}
	if data, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		files[snapshotName] = data
	} else {
		t.Fatalf("no snapshot after checkpoints: %v", err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple surviving segments, got %v", segs)
	}
	for _, idx := range segs {
		data, err := os.ReadFile(segPath(dir, idx))
		if err != nil {
			t.Fatal(err)
		}
		files[segName(idx)] = data
	}
	mkCrash := func(mutate func(map[string][]byte)) string {
		crash := t.TempDir()
		img := map[string][]byte{}
		for name, data := range files {
			img[name] = data
		}
		if mutate != nil {
			mutate(img)
		}
		for name, data := range img {
			if err := os.WriteFile(filepath.Join(crash, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return crash
	}
	check := func(label string, crash string) {
		t.Helper()
		re, err := Open(crash)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		got := dumpStore(t, re)
		re.Close()
		for _, want := range states {
			if got == want {
				return
			}
		}
		t.Fatalf("%s: recovered state matches no whole-batch oracle prefix:\n%s", label, got)
	}

	rng := rand.New(rand.NewSource(7))
	for si, seg := range segs {
		data := files[segName(seg)]
		cuts := []int{0, 1, 7, 8, 9, len(data) - 1, len(data)}
		for i := 0; i < 10; i++ {
			cuts = append(cuts, rng.Intn(len(data)+1))
		}
		for _, cut := range cuts {
			if cut < 0 || cut > len(data) {
				continue
			}
			// A crash tears only the active segment, so a cut in segment
			// i means segments past i were never created.
			crash := mkCrash(func(img map[string][]byte) {
				img[segName(seg)] = data[:cut]
				for _, later := range segs[si+1:] {
					delete(img, segName(later))
				}
			})
			check(segName(seg)[len(segPrefix):]+"-cut", crash)
		}
	}

	// A torn tail in a non-final segment (filesystem damage rather than a
	// crash): recovery must truncate there and drop every later segment,
	// still landing on a whole-batch state.
	if len(segs) > 1 {
		first := segs[0]
		data := files[segName(first)]
		crash := mkCrash(func(img map[string][]byte) {
			img[segName(first)] = data[:len(data)-1]
		})
		check("mid-segment-tear", crash)
	}

	// Crash mid-rotation: the next segment exists with a partial or
	// complete header but no frames. Recovery must keep the full state.
	last := segs[len(segs)-1]
	for _, tail := range [][]byte{segMagic[:3], segMagic} {
		crash := mkCrash(func(img map[string][]byte) {
			img[segName(last+1)] = append([]byte(nil), tail...)
		})
		re, err := Open(crash)
		if err != nil {
			t.Fatalf("torn rotation: %v", err)
		}
		if got := dumpStore(t, re); got != states[nBatches] {
			t.Fatalf("torn rotation lost data:\n%s", got)
		}
		re.Close()
	}

	// Crash mid-snapshot: a stale .tmp must be ignored and removed.
	crash := mkCrash(func(img map[string][]byte) {
		img[snapshotName+".tmp"] = []byte("partial snapshot garbage")
	})
	re, err := Open(crash)
	if err != nil {
		t.Fatalf("stale snapshot tmp: %v", err)
	}
	if got := dumpStore(t, re); got != states[nBatches] {
		t.Fatalf("stale snapshot tmp corrupted recovery:\n%s", got)
	}
	re.Close()
	if _, err := os.Stat(filepath.Join(crash, snapshotName+".tmp")); !os.IsNotExist(err) {
		t.Error("stale snapshot .tmp not removed at open")
	}
}

// legacyFrame encodes one pre-segmentation log frame (no commit stamp in
// the payload), for upgrade testing against hand-built scdb.log files.
func legacyFrame(op byte, table string, rowID uint64, data []byte) []byte {
	payload := []byte{op}
	payload = binary.AppendUvarint(payload, uint64(len(table)))
	payload = append(payload, table...)
	payload = binary.AppendUvarint(payload, rowID)
	payload = binary.AppendUvarint(payload, uint64(len(data)))
	payload = append(payload, data...)
	h := fnv.New64a()
	h.Write(payload)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint64(frame, h.Sum64())
	return append(frame, payload...)
}

// TestLegacyLogUpgrade: a pre-segmentation scdb.log (stamp-less frames,
// no header) opens cleanly, migrates to segment 0, appends continue in
// segment 1, and the first checkpoint retires the legacy file.
func TestLegacyLogUpgrade(t *testing.T) {
	dir := t.TempDir()
	enc := func(i int) []byte { return model.AppendRecord(nil, mkRec(i)) }
	var log []byte
	log = append(log, legacyFrame(opCreateTable, "t", 0, nil)...)
	log = append(log, legacyFrame(opInsert, "t", 1, enc(1))...)
	log = append(log, legacyFrame(opInsert, "t", 2, enc(2))...)
	log = append(log, legacyFrame(opUpdate, "t", 1, enc(10))...)
	log = append(log, legacyFrame(opDelete, "t", 2, nil)...)
	// One legacy batch frame: rowID slot holds the entry count.
	var batch []byte
	batch = append(batch, opInsert)
	batch = binary.AppendUvarint(batch, 3)
	batch = binary.AppendUvarint(batch, uint64(len(enc(3))))
	batch = append(batch, enc(3)...)
	batch = append(batch, opDelete)
	batch = binary.AppendUvarint(batch, 1)
	batch = binary.AppendUvarint(batch, 0)
	log = append(log, legacyFrame(opBatch, "t", 2, batch)...)
	if err := os.WriteFile(filepath.Join(dir, legacyLogName), log, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenOptions(dir, Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	tb, ok := s.Table("t")
	if !ok {
		t.Fatal("legacy table lost")
	}
	if tb.Len() != 1 {
		t.Fatalf("legacy Len = %d, want 1", tb.Len())
	}
	if rec, ok := tb.Get(3); !ok {
		t.Fatal("legacy batch insert lost")
	} else if v, _ := rec.Get("i").AsInt(); v != 3 {
		t.Fatalf("legacy row holds %v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyLogName)); !os.IsNotExist(err) {
		t.Error("scdb.log not migrated")
	}
	if _, err := os.Stat(segPath(dir, 0)); err != nil {
		t.Errorf("legacy log not at segment 0: %v", err)
	}
	// New appends go to segment 1: the legacy file stays immutable.
	id, err := tb.Insert(mkRec(4))
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Errorf("post-upgrade insert got id %d, want 4", id)
	}
	if st := s.WALStats(); st.SegmentIndex != 1 {
		t.Errorf("active segment = %d, want 1", st.SegmentIndex)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(dir, 0)); !os.IsNotExist(err) {
		t.Error("checkpoint did not retire the legacy segment")
	}
	want := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dumpStore(t, re); got != want {
		t.Fatalf("post-upgrade recovery differs:\n%s\nvs\n%s", got, want)
	}
}

// TestSnapshotV1BackCompat: a v1 snapshot (no magic, no catalog) still
// loads; the next checkpoint rewrites it as v2.
func TestSnapshotV1BackCompat(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = binary.AppendUvarint(buf, 1) // one table
	buf = binary.AppendUvarint(buf, 1)
	buf = append(buf, 't')
	buf = binary.AppendUvarint(buf, 2) // two rows
	buf = binary.AppendUvarint(buf, 1)
	buf = model.AppendRecord(buf, mkRec(1))
	buf = binary.AppendUvarint(buf, 5)
	buf = model.AppendRecord(buf, mkRec(5))
	if err := os.WriteFile(filepath.Join(dir, snapshotName), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenOptions(dir, Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatalf("v1 snapshot open: %v", err)
	}
	tb, ok := s.Table("t")
	if !ok || tb.Len() != 2 {
		t.Fatalf("v1 snapshot rows lost")
	}
	// IDs must not be reused below the highest snapshot row.
	id, err := tb.Insert(mkRec(6))
	if err != nil {
		t.Fatal(err)
	}
	if id != 6 {
		t.Errorf("insert after v1 load got id %d, want 6", id)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil || len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		t.Fatal("checkpoint did not upgrade the snapshot to v2")
	}
	want := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dumpStore(t, re); got != want {
		t.Fatalf("v1->v2 upgrade recovery differs:\n%s\nvs\n%s", got, want)
	}
}

// TestIndexCatalogPersisted: the self-curation state — index catalog, hit
// counters, access counters — survives checkpoint + restart, so hot
// indexes don't have to be re-learned from cold counters.
func TestIndexCatalogPersisted(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		rec := model.Record{"i": model.Int(int64(i)), "j": model.Int(int64(i % 10))}
		if _, err := tb.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreateIndex("i", IndexSorted); err != nil {
		t.Fatal(err)
	}
	scan := func(tb *Table, attr string, n int) {
		for k := 0; k < n; k++ {
			preds := []ZonePred{{Attr: attr, Op: "=", Val: model.Int(int64(k % 10))}}
			tb.ScanWhere(s.Now(), preds, ScanOptions{}, func([]RowID, []model.Record) bool { return true })
		}
	}
	scan(tb, "i", 3)
	before := tb.IndexStats()
	if len(before) != 1 || before[0].Hits == 0 {
		t.Fatalf("index stats before restart: %+v", before)
	}
	// Two accesses on "j": below the auto-index threshold, but the counter
	// must persist so later traffic crosses it after a restart.
	scan(tb, "j", 2)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenOptions(dir, Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rt, _ := re.Table("t")
	after := rt.IndexStats()
	if len(after) != 1 {
		t.Fatalf("index catalog lost across restart: %+v", after)
	}
	if after[0].Attr != "i" || after[0].Kind != "sorted" || after[0].Auto {
		t.Fatalf("restored index wrong: %+v", after[0])
	}
	if after[0].Hits != before[0].Hits {
		t.Errorf("restored hits = %d, want %d", after[0].Hits, before[0].Hits)
	}
	if after[0].Entries == 0 {
		t.Error("restored index is empty")
	}
	// The persisted access counters plus two more scans cross the
	// auto-index threshold (4); a fresh store would still be at 2.
	scan(rt, "j", 2)
	found := false
	for _, st := range rt.IndexStats() {
		if st.Attr == "j" && st.Auto {
			found = true
		}
	}
	if !found {
		t.Errorf("persisted access counters did not seed auto-indexing: %+v", rt.IndexStats())
	}
}

// BenchmarkRecovery measures Open() on a prebuilt directory: full-log
// replay (serial vs parallel) against checkpoint-bounded replay. The
// checkpointed open must be O(data since the last checkpoint), not O(all
// data ever written).
func BenchmarkRecovery(b *testing.B) {
	build := func(b *testing.B, rows int, ckpt bool, tail int) string {
		b.Helper()
		dir := b.TempDir()
		s, err := OpenOptions(dir, Options{CheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		for ti := 0; ti < 4; ti++ {
			tb, _ := s.CreateTable(string(rune('a' + ti)))
			recs := make([]model.Record, 100)
			for done := 0; done < rows/4; done += len(recs) {
				for i := range recs {
					recs[i] = mkRec(ti*rows + done + i)
				}
				if _, err := tb.InsertBatch(recs); err != nil {
					b.Fatal(err)
				}
			}
			// Update churn: the log carries every version, a checkpoint
			// snapshot only the live ones — the asymmetry checkpoints exist
			// to exploit.
			for round := 0; round < 2; round++ {
				for id := 1; id <= rows/4; id++ {
					if err := tb.Update(RowID(id), mkRec(ti*rows+round)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		if ckpt {
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			tb, _ := s.Table("a")
			for i := 0; i < tail; i++ {
				if _, err := tb.Insert(mkRec(rows + i)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	open := func(b *testing.B, dir string, par int) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := OpenOptions(dir, Options{RecoverParallelism: par, CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	}
	// par=4 is explicit (not 0 = per-CPU) so the worker pools engage even
	// on single-CPU hosts; the speedup scales with real cores.
	// SCDB_RECOVERY_ROWS overrides the 20k default (CI smoke runs set it
	// small).
	rows := 20000
	if s := os.Getenv("SCDB_RECOVERY_ROWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			rows = n
		}
	}
	b.Run("wal-only/serial", func(b *testing.B) { open(b, build(b, rows, false, 0), 1) })
	b.Run("wal-only/parallel", func(b *testing.B) { open(b, build(b, rows, false, 0), 4) })
	b.Run("checkpointed/serial", func(b *testing.B) { open(b, build(b, rows, true, 100), 1) })
	b.Run("checkpointed/parallel", func(b *testing.B) { open(b, build(b, rows, true, 100), 4) })
}
