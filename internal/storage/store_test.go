package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"scdb/internal/model"
)

func rec(kv ...any) model.Record {
	r := model.Record{}
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case string:
			r[k] = model.String(v)
		case int:
			r[k] = model.Int(int64(v))
		case float64:
			r[k] = model.Float(v)
		case bool:
			r[k] = model.Bool(v)
		case model.Value:
			r[k] = v
		default:
			panic(fmt.Sprintf("rec: unsupported %T", v))
		}
	}
	return r
}

func TestCreateTable(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tb, err := s.CreateTable("drugs")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "drugs" {
		t.Errorf("Name = %q", tb.Name())
	}
	if _, err := s.CreateTable("drugs"); err == nil {
		t.Error("duplicate CreateTable must fail")
	}
	if got, ok := s.Table("drugs"); !ok || got != tb {
		t.Error("Table lookup failed")
	}
	if _, ok := s.Table("nope"); ok {
		t.Error("lookup of missing table must fail")
	}
	s.CreateTable("aaa")
	names := s.Tables()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "drugs" {
		t.Errorf("Tables = %v", names)
	}
}

func TestEnsureTable(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	a, err := s.EnsureTable("x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EnsureTable("x")
	if err != nil || a != b {
		t.Error("EnsureTable must be idempotent")
	}
}

func TestCRUD(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")

	id, err := tb.Insert(rec("name", "Warfarin", "dosage", 5.1))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Get(id)
	if !ok || !model.Equal(got["name"], model.String("Warfarin")) {
		t.Fatalf("Get = %v %v", got, ok)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}

	if err := tb.Update(id, rec("name", "Warfarin", "dosage", 3.4)); err != nil {
		t.Fatal(err)
	}
	got, _ = tb.Get(id)
	if f, _ := got["dosage"].AsFloat(); f != 3.4 {
		t.Errorf("after update dosage = %v", got["dosage"])
	}

	if err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Get(id); ok {
		t.Error("deleted row still visible")
	}
	if tb.Len() != 0 {
		t.Errorf("Len after delete = %d", tb.Len())
	}
	if err := tb.Delete(id); err == nil {
		t.Error("double delete must fail")
	}
	if err := tb.Update(id, rec("x", 1)); err == nil {
		t.Error("update of deleted row must fail")
	}
	if err := tb.Update(999, rec("x", 1)); err == nil {
		t.Error("update of unknown row must fail")
	}
}

func TestMVCCSnapshots(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")

	id, _ := tb.Insert(rec("v", 1))
	csn1 := s.Now()
	tb.Update(id, rec("v", 2))
	csn2 := s.Now()
	tb.Delete(id)

	if got, ok := tb.GetAt(id, csn1); !ok || !model.Equal(got["v"], model.Int(1)) {
		t.Errorf("at csn1: %v %v", got, ok)
	}
	if got, ok := tb.GetAt(id, csn2); !ok || !model.Equal(got["v"], model.Int(2)) {
		t.Errorf("at csn2: %v %v", got, ok)
	}
	if _, ok := tb.GetAt(id, s.Now()); ok {
		t.Error("latest must be deleted")
	}
	if _, ok := tb.GetAt(id, 0); ok {
		t.Error("before insert must be invisible")
	}
	if tb.VersionCount(id) != 3 {
		t.Errorf("VersionCount = %d", tb.VersionCount(id))
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	for i := 0; i < 10; i++ {
		tb.Insert(rec("i", i))
	}
	var seen []int64
	tb.Scan(func(id RowID, r model.Record) bool {
		v, _ := r["i"].AsInt()
		seen = append(seen, v)
		return true
	})
	if len(seen) != 10 {
		t.Fatalf("scan saw %d rows", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order broken: %v", seen)
		}
	}
	count := 0
	tb.Scan(func(RowID, model.Record) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanAtHistorical(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	id1, _ := tb.Insert(rec("i", 1))
	csn := s.Now()
	tb.Insert(rec("i", 2))
	tb.Delete(id1)

	n := 0
	tb.ScanAt(csn, func(RowID, model.Record) bool { n++; return true })
	if n != 1 {
		t.Errorf("historical scan saw %d rows, want 1", n)
	}
	n = 0
	tb.Scan(func(RowID, model.Record) bool { n++; return true })
	if n != 1 {
		t.Errorf("latest scan saw %d rows, want 1 (id1 deleted, id2 live)", n)
	}
}

func TestVacuum(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	id, _ := tb.Insert(rec("v", 1))
	for i := 2; i <= 5; i++ {
		tb.Update(id, rec("v", i))
	}
	if tb.VersionCount(id) != 5 {
		t.Fatalf("VersionCount = %d", tb.VersionCount(id))
	}
	removed := tb.Vacuum(s.Now())
	if removed != 4 {
		t.Errorf("Vacuum removed %d, want 4", removed)
	}
	if got, ok := tb.Get(id); !ok || !model.Equal(got["v"], model.Int(5)) {
		t.Error("Vacuum must keep the live version")
	}

	// Deleting then vacuuming past the tombstone removes the row entirely.
	tb.Delete(id)
	tb.Vacuum(s.Now())
	if tb.VersionCount(id) != 0 {
		t.Error("tombstoned row must be dropped by vacuum")
	}
}

func TestVacuumKeepsHorizonVisibility(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	id, _ := tb.Insert(rec("v", 1))
	horizon := s.Now()
	tb.Update(id, rec("v", 2))
	tb.Vacuum(horizon)
	if got, ok := tb.GetAt(id, horizon); !ok || !model.Equal(got["v"], model.Int(1)) {
		t.Errorf("vacuum at horizon must keep the version visible there; got %v %v", got, ok)
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.Insert(rec("w", w, "i", i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tb.Scan(func(RowID, model.Record) bool { return true })
		}
	}()
	wg.Wait()
	<-done
	if tb.Len() != 800 {
		t.Errorf("Len = %d, want 800", tb.Len())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("drugs")
	id1, _ := tb.Insert(rec("name", "Warfarin", "dose", 5.1))
	id2, _ := tb.Insert(rec("name", "Ibuprofen"))
	tb.Update(id1, rec("name", "Warfarin", "dose", 6.1))
	tb.Delete(id2)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tb2, ok := s2.Table("drugs")
	if !ok {
		t.Fatal("table lost after recovery")
	}
	if tb2.Len() != 1 {
		t.Fatalf("Len after recovery = %d", tb2.Len())
	}
	got, ok := tb2.Get(id1)
	if !ok {
		t.Fatal("row lost")
	}
	if f, _ := got["dose"].AsFloat(); f != 6.1 {
		t.Errorf("recovered dose = %v", got["dose"])
	}
	if _, ok := tb2.Get(id2); ok {
		t.Error("deleted row resurrected")
	}
	// New inserts must not collide with recovered IDs.
	id3, _ := tb2.Insert(rec("name", "Methotrexate"))
	if id3 == id1 || id3 == id2 {
		t.Errorf("row id reuse after recovery: %d", id3)
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		tb.Insert(rec("i", i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations go to the fresh log.
	tb.Insert(rec("i", 100))
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tb2, _ := s2.Table("t")
	if tb2.Len() != 101 {
		t.Errorf("Len after checkpoint+log recovery = %d, want 101", tb2.Len())
	}
}

func TestTornLogTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")
	tb.Insert(rec("i", 1))
	s.Close()

	// Corrupt the log by appending garbage (simulates a torn write).
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0xff, 0xde, 0xad})
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery with torn tail must succeed: %v", err)
	}
	defer s2.Close()
	tb2, _ := s2.Table("t")
	if tb2.Len() != 1 {
		t.Errorf("Len = %d", tb2.Len())
	}
	// The torn bytes must be gone so new appends are readable.
	tb2.Insert(rec("i", 2))
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	tb3, _ := s3.Table("t")
	if tb3.Len() != 2 {
		t.Errorf("Len after re-append = %d, want 2", tb3.Len())
	}
}

func TestMidLogCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")
	tb.Insert(rec("i", 1))
	tb.Insert(rec("i", 2))
	s.Close()

	// Flip bytes in the middle of the log: replay must stop at the first
	// bad frame (checksum) and keep what preceded it.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Skip("log too small to corrupt meaningfully")
	}
	mid := len(data) / 2
	data[mid] ^= 0xff
	data[mid+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery with mid-log corruption must succeed (torn semantics): %v", err)
	}
	defer s2.Close()
	tb2, ok := s2.Table("t")
	if !ok {
		t.Fatal("table lost (creation frame preceded the corruption)")
	}
	if tb2.Len() > 2 {
		t.Errorf("rows = %d, impossible", tb2.Len())
	}
	// The store is writable after truncation at the corruption point.
	if _, err := tb2.Insert(rec("i", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")
	tb.Insert(rec("i", 1))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Truncate the snapshot mid-record: open must fail loudly rather than
	// silently losing data (the snapshot is the only copy post-truncation).
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("open with corrupt snapshot must fail")
	}
}

func TestPropertyRandomOpsRecovery(t *testing.T) {
	// Apply a random op sequence, recover, and check final states match.
	f := func(seed int64) bool {
		dir, err := os.MkdirTemp("", "scdb-prop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		r := rand.New(rand.NewSource(seed))
		s, err := Open(dir)
		if err != nil {
			return false
		}
		tb, _ := s.CreateTable("t")
		var live []RowID
		for i := 0; i < 100; i++ {
			switch {
			case len(live) == 0 || r.Float64() < 0.5:
				id, _ := tb.Insert(rec("i", i))
				live = append(live, id)
			case r.Float64() < 0.5:
				tb.Update(live[r.Intn(len(live))], rec("i", -i))
			default:
				k := r.Intn(len(live))
				tb.Delete(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
		want := map[RowID]model.Record{}
		tb.Scan(func(id RowID, rec model.Record) bool { want[id] = rec; return true })
		s.Close()

		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		tb2, ok := s2.Table("t")
		if !ok || tb2.Len() != len(want) {
			return false
		}
		okAll := true
		tb2.Scan(func(id RowID, rec model.Record) bool {
			w, ok := want[id]
			if !ok || !model.Equal(rec["i"], w["i"]) {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReservedInserts(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")

	id1 := tb.ReserveID()
	id2 := tb.ReserveID()
	if id1 == id2 {
		t.Fatal("reservations must be distinct")
	}
	csn := s.AllocateCSN()
	if err := tb.InsertReservedAt(id2, rec("v", 2), csn); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertReservedAt(id2, rec("v", 3), csn); err == nil {
		t.Error("double install of a reserved ID must fail")
	}
	// Interleaved plain inserts never collide with reservations.
	id3, _ := tb.Insert(rec("v", 4))
	if id3 == id1 || id3 == id2 {
		t.Errorf("plain insert reused a reserved ID: %d", id3)
	}
	if got, ok := tb.Get(id2); !ok || !model.Equal(got["v"], model.Int(2)) {
		t.Error("reserved insert unreadable")
	}
	// Reserved inserts recover from the log like any other.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tb2, _ := s2.Table("t")
	if got, ok := tb2.Get(id2); !ok || !model.Equal(got["v"], model.Int(2)) {
		t.Error("reserved insert lost in recovery")
	}
	// Unused reservation id1 is simply a gap.
	if _, ok := tb2.Get(id1); ok {
		t.Error("unused reservation materialized")
	}
}

func TestLastModified(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	if _, ok := tb.LastModified(1); ok {
		t.Error("unknown row has no modification stamp")
	}
	id, _ := tb.Insert(rec("v", 1))
	first, ok := tb.LastModified(id)
	if !ok {
		t.Fatal("stamp missing")
	}
	tb.Update(id, rec("v", 2))
	second, _ := tb.LastModified(id)
	if second <= first {
		t.Errorf("stamps not monotone: %d then %d", first, second)
	}
	tb.Delete(id)
	third, ok := tb.LastModified(id)
	if !ok || third <= second {
		t.Errorf("tombstone stamp = %d %v", third, ok)
	}
}

func TestCheckpointEmptyAndRepeated(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	// Checkpoint of an empty store.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tb, _ := s.CreateTable("t")
	tb.Insert(rec("v", 1))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint immediately after (log empty) must be fine.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tb2, _ := s2.Table("t")
	if tb2.Len() != 1 {
		t.Errorf("rows after repeated checkpoints = %d", tb2.Len())
	}
	// In-memory stores no-op.
	mem, _ := Open("")
	defer mem.Close()
	if err := mem.Checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint: %v", err)
	}
	if err := mem.Sync(); err != nil {
		t.Errorf("in-memory sync: %v", err)
	}
}

func TestCheckpointPreservesDeletes(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tb, _ := s.CreateTable("t")
	id1, _ := tb.Insert(rec("v", 1))
	tb.Insert(rec("v", 2))
	tb.Delete(id1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	tb2, _ := s2.Table("t")
	if tb2.Len() != 1 {
		t.Errorf("len after checkpoint with delete = %d", tb2.Len())
	}
	if _, ok := tb2.Get(id1); ok {
		t.Error("deleted row in snapshot")
	}
}

func TestEnsureTableOnRecoveredStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CreateTable("exists")
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	tb, err := s2.EnsureTable("exists")
	if err != nil || tb == nil {
		t.Fatalf("EnsureTable on recovered: %v", err)
	}
	tb2, err := s2.EnsureTable("fresh")
	if err != nil || tb2 == nil {
		t.Fatalf("EnsureTable new: %v", err)
	}
}

func TestOpenUnwritableDirFails(t *testing.T) {
	if _, err := Open("/proc/definitely/not/writable"); err == nil {
		t.Error("open in unwritable location must fail")
	}
}

func TestColumnize(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	tb, _ := s.CreateTable("t")
	tb.Insert(rec("a", 1, "b", "x"))
	tb.Insert(rec("a", 2))
	tb.Insert(rec("b", "y", "c", true))

	cs := Columnize(tb)
	if cs.Len() != 3 {
		t.Fatalf("Len = %d", cs.Len())
	}
	wantNames := []string{"a", "b", "c"}
	got := cs.ColumnNames()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("ColumnNames = %v, want %v", got, wantNames)
	}
	a := cs.Columns["a"]
	if !model.Equal(a[0], model.Int(1)) || !model.Equal(a[1], model.Int(2)) || !a[2].IsNull() {
		t.Errorf("column a = %v", a)
	}
	// Projection of a subset.
	cs2 := Columnize(tb, "b")
	if len(cs2.Columns) != 1 || len(cs2.Columns["b"]) != 3 {
		t.Error("subset projection broken")
	}
}
