package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"scdb/internal/model"
)

// replDump renders a store's visible state deterministically: every table,
// every row id, latest record with sorted keys. Byte-equal dumps mean the
// stores answer every read identically.
func replDump(s *Store) string {
	var b strings.Builder
	for _, name := range s.Tables() {
		tb, _ := s.Table(name)
		fmt.Fprintf(&b, "table %s\n", name)
		tb.mu.RLock()
		ids := make([]RowID, 0, len(tb.rows))
		for id := range tb.rows {
			ids = append(ids, id)
		}
		tb.mu.RUnlock()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rec, ok := tb.Get(id)
			if !ok {
				fmt.Fprintf(&b, "  %d: <deleted>\n", id)
				continue
			}
			keys := make([]string, 0, len(rec))
			for k := range rec {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "  %d:", id)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%v", k, rec[k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// shipAll drains the primary's retained log into the follower the way the
// server's shipping loop does: watermark first, then tail until caught up.
func shipAll(t *testing.T, p, f *Store) {
	t.Helper()
	pos, err := p.ReplStartPos()
	if err != nil {
		t.Fatal(err)
	}
	for {
		w := p.StableCSN()
		entries, next, atEnd, err := p.TailWAL(pos, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.ApplyRepl(entries, w); err != nil {
			t.Fatal(err)
		}
		pos = next
		if atEnd {
			return
		}
	}
}

// TestReplTailApplyMirror ships a mixed workload (creates, single-row
// writes, multi-frame batches, updates, deletes, segment rotations) from a
// primary to a follower through the TailWAL/ApplyRepl pair and requires
// the follower to be byte-identical at the same CSN — then crash-restarts
// the follower from its own re-logged WAL and requires identity again.
func TestReplTailApplyMirror(t *testing.T) {
	p, err := OpenOptions(t.TempDir(), Options{SegmentBytes: 4 << 10, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	fdir := t.TempDir()
	f, err := OpenOptions(fdir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}

	drugs, err := p.CreateTable("drugs")
	if err != nil {
		t.Fatal(err)
	}
	var ids []RowID
	for i := 0; i < 400; i++ {
		id, err := drugs.Insert(rec("name", fmt.Sprintf("d%03d", i), "i", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 120; i++ {
		if err := drugs.Update(ids[i], rec("name", fmt.Sprintf("d%03d", i), "upd", true)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 120; i < 170; i++ {
		if err := drugs.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctd, err := p.CreateTable("ctd")
	if err != nil {
		t.Fatal(err)
	}
	var batch []model.Record
	for i := 0; i < 300; i++ {
		batch = append(batch, rec("chemical", fmt.Sprintf("c%03d", i), "score", float64(i)/7))
	}
	if _, err := ctd.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}

	shipAll(t, p, f)
	if got, want := f.Now(), p.Now(); got != want {
		t.Fatalf("follower clock = %d, primary = %d", got, want)
	}
	if got, want := replDump(f), replDump(p); got != want {
		t.Fatalf("follower state diverged from primary:\n--- follower ---\n%s--- primary ---\n%s", got, want)
	}

	// The follower re-logged every frame at its recorded stamp: a restart
	// from its own directory must reproduce the same state and clock.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenOptions(fdir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got, want := f2.Now(), p.Now(); got != want {
		t.Fatalf("recovered follower clock = %d, primary = %d", got, want)
	}
	if got, want := replDump(f2), replDump(p); got != want {
		t.Fatalf("recovered follower diverged:\n--- follower ---\n%s--- primary ---\n%s", got, want)
	}
}

// TestReplIncrementalShipping interleaves shipping with ongoing writes:
// each wave tails only the new frames, and after every wave the follower
// matches the primary's stable prefix.
func TestReplIncrementalShipping(t *testing.T) {
	p, err := OpenOptions(t.TempDir(), Options{SegmentBytes: 2 << 10, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := OpenOptions(t.TempDir(), Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	tb, err := p.CreateTable("events")
	if err != nil {
		t.Fatal(err)
	}
	pos, err := p.ReplStartPos()
	if err != nil {
		t.Fatal(err)
	}
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < 100; i++ {
			if _, err := tb.Insert(rec("wave", wave, "n", i)); err != nil {
				t.Fatal(err)
			}
		}
		for {
			w := p.StableCSN()
			entries, next, atEnd, err := p.TailWAL(pos, 8<<10)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.ApplyRepl(entries, w); err != nil {
				t.Fatal(err)
			}
			pos = next
			if atEnd {
				break
			}
		}
		if got, want := f.Now(), p.Now(); got != want {
			t.Fatalf("wave %d: follower clock = %d, primary = %d", wave, got, want)
		}
		if replDump(f) != replDump(p) {
			t.Fatalf("wave %d: follower state diverged", wave)
		}
	}
}

// TestReplTrimAndPins covers the checkpoint interaction: a checkpoint trims
// segments out from under an unpinned reader (ErrWALTrimmed +
// ReplNeedsSnapshot), while a pinned reader keeps streaming the sealed
// segments a checkpoint would otherwise delete.
func TestReplTrimAndPins(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{SegmentBytes: 1 << 10, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tb, err := s.CreateTable("x")
	if err != nil {
		t.Fatal(err)
	}
	fill := func() {
		for i := 0; i < 200; i++ {
			if _, err := tb.Insert(rec("n", i, "pad", strings.Repeat("p", 32))); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill()
	if need, err := s.ReplNeedsSnapshot(0); err != nil || need {
		t.Fatalf("fresh log: needs snapshot = %v, err = %v", need, err)
	}
	start, err := s.ReplStartPos()
	if err != nil {
		t.Fatal(err)
	}

	// A pin at the start position survives a checkpoint: the sealed
	// segments stay readable even though the snapshot covers them.
	pin := s.PinSegments(start.Seg)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fill()
	if _, _, _, err := s.TailWAL(start, 4<<10); err != nil {
		t.Fatalf("pinned segment trimmed: %v", err)
	}

	// Releasing the pin lets the next checkpoint delete the prefix; the
	// old position is then trimmed and a stale follower needs a snapshot.
	pin.Release()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.TailWAL(start, 4<<10); !errors.Is(err, ErrWALTrimmed) {
		t.Fatalf("TailWAL after trim = %v, want ErrWALTrimmed", err)
	}
	if need, err := s.ReplNeedsSnapshot(0); err != nil || !need {
		t.Fatalf("stale follower: needs snapshot = %v, err = %v", need, err)
	}
}
