package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scdb/internal/datagen"
	"scdb/internal/storage"
)

// ingestCorpus is the delivery sequence the ingest differentials replay:
// the Figure-2 life-science sources at bulk size (so batches of every
// tested size produce multiple chunks), then a stream of single-entity
// deliveries with cross-platform duplicates to keep incremental ER busy.
func ingestCorpus() []datagen.Dataset {
	dss := datagen.LifeSci(1, 40, 30, 20)
	return append(dss, datagen.Stream(7, 60)...)
}

// corpusFingerprint renders every engineCorpus answer plus the engine
// counters into one comparable string. CacheHitRate is excluded: it
// depends on query traffic, not ingested state.
func corpusFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	var b strings.Builder
	for _, src := range engineCorpus {
		res, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		b.WriteString(src)
		b.WriteString("\n")
		b.WriteString(renderRows(res))
	}
	st := db.Stats()
	st.CacheHitRate = 0
	fmt.Fprintf(&b, "stats %d %d %d %d %d %d %d %d %d\n",
		st.Tables, st.Entities, st.Edges, st.Concepts,
		st.InferredTypes, st.Witnesses, st.Inconsistencies, st.Merges, st.Claims)
	return b.String()
}

// ingestWith opens an engine with the tweaked options, replays the corpus,
// and returns the engine (cleanup registered).
func ingestWith(t *testing.T, tweak func(*Options)) *DB {
	t.Helper()
	opts := lifesciOptions("")
	opts.DisableMatCache = true
	if tweak != nil {
		tweak(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, ds := range ingestCorpus() {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestIngestStateEquivalence is the batched-vs-serial differential
// (acceptance gate): every combination of the new ingest knobs — batch
// size, decode parallelism, sync policy — must converge to byte-identical
// query answers and engine counters against the serial per-record
// baseline, including after a durable close/reopen (batch-frame recovery
// plus curation rebuild over batched meta rows).
func TestIngestStateEquivalence(t *testing.T) {
	baseline := ingestWith(t, func(o *Options) {
		o.IngestBatchSize = 1
		o.IngestParallelism = 1
	})
	want := corpusFingerprint(t, baseline)

	variants := []struct {
		name  string
		tweak func(*Options)
	}{
		{"batched-default", nil},
		{"batch-3", func(o *Options) { o.IngestBatchSize = 3 }},
		{"parallel-8", func(o *Options) { o.IngestParallelism = 8 }},
		{"batch-7-parallel-4", func(o *Options) { o.IngestBatchSize = 7; o.IngestParallelism = 4 }},
		{"durable-sync-group", func(o *Options) { o.Dir = t.TempDir(); o.Sync = storage.SyncGroup }},
		{"durable-sync-always-batch-5", func(o *Options) {
			o.Dir = t.TempDir()
			o.Sync = storage.SyncAlways
			o.IngestBatchSize = 5
		}},
		{"durable-sync-none-parallel-4", func(o *Options) {
			o.Dir = t.TempDir()
			o.IngestParallelism = 4
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var opts Options
			db := ingestWith(t, func(o *Options) {
				if v.tweak != nil {
					v.tweak(o)
				}
				opts = *o
			})
			if got := corpusFingerprint(t, db); got != want {
				t.Fatalf("state diverged from serial baseline\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
			if opts.Dir == "" {
				return
			}
			// Durable: recovery must reproduce the same state.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { re.Close() })
			reWant := want
			// Recovery re-registers no datasets: the Datasets/Records counters
			// live in the pipeline, which rebuilds relation state only. Compare
			// query answers plus graph-derived stats, which statsLine carries.
			if got := corpusFingerprint(t, re); got != reWant {
				t.Fatalf("recovered state diverged\n--- got ---\n%s\n--- want ---\n%s", got, reWant)
			}
		})
	}
}

// TestConcurrentIngestQueryVacuum drives ingest, queries, and vacuum at
// the same time (run under -race): queries must never fail mid-curation,
// vacuum must interleave with both without db.mu, and the final state must
// match a serially built reference because the single ingester fixes the
// delivery order.
func TestConcurrentIngestQueryVacuum(t *testing.T) {
	opts := lifesciOptions("")
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	base := datagen.LifeSci(1, 10, 8, 6)
	for _, ds := range base {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	stream := datagen.Stream(3, 150)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, ds := range stream {
			if err := db.Ingest(ds); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	queries := []string{
		"SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name",
		"SELECT COUNT(*) AS n FROM uniprot",
		"SELECT _key FROM Drug ORDER BY _key LIMIT 4",
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, q := range queries {
					if _, _, err := db.Query(q); err != nil {
						t.Errorf("query %q during ingest: %v", q, err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				db.Vacuum()
				return
			default:
			}
			db.Vacuum()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	ref, err := Open(lifesciOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	for _, ds := range append(append([]datagen.Dataset{}, base...), stream...) {
		if err := ref.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	got := corpusFingerprint(t, db)
	want := corpusFingerprint(t, ref)
	if got != want {
		t.Fatalf("concurrent ingest diverged from serial reference\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
