package core

import (
	"fmt"
	"sort"

	"scdb/internal/crowd"
	"scdb/internal/fusion"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/semantic"
)

// This file integrates the optional enrichment channels into the engine:
// simulated crowdsourcing for claim conflicts (FS.8) and statistical link
// prediction feeding the relation layer (FS.4) — the "non-deterministic
// predictive inference power" whose transactional consequences FS.11
// studies.

// CrowdOutcome reports one crowd-resolved conflict.
type CrowdOutcome struct {
	Value     model.Value
	Agreement float64
	Asks      int
	Spent     float64
}

// CrowdResolve poses a conflicting claim to a simulated crowd: the
// distinct claimed values become the candidates, workers are drawn with
// the given accuracy, and the majority answer within budget wins. The
// trueIdx names which candidate (in value order) the simulator treats as
// correct; pass -1 to use the richness-weighted fusion winner as ground
// truth (the usual mode: the crowd checks fusion's work).
func (db *DB) CrowdResolve(entity model.EntityID, attr string, budget float64, workerAccuracy float64, seed int64, trueIdx int) (CrowdOutcome, error) {
	db.mu.RLock()
	claims := db.worlds.ClaimsAbout(entity, attr)
	db.mu.RUnlock()
	if len(claims) == 0 {
		return CrowdOutcome{}, fmt.Errorf("core: no claims about entity %d attr %q", entity, attr)
	}
	seen := map[uint64]bool{}
	var cands []model.Value
	for _, c := range claims {
		if h := c.Value.Hash(); !seen[h] {
			seen[h] = true
			cands = append(cands, c.Value)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return model.Less(cands[i], cands[j]) })
	if trueIdx < 0 {
		db.mu.RLock()
		winner, _, err := db.worlds.Resolve(entity, attr, fusion.PolicyRichnessWeighted)
		db.mu.RUnlock()
		if err != nil {
			return CrowdOutcome{}, err
		}
		for i, c := range cands {
			if model.Equal(c, winner) {
				trueIdx = i
				break
			}
		}
	}
	if trueIdx < 0 || trueIdx >= len(cands) {
		return CrowdOutcome{}, fmt.Errorf("core: crowd truth index %d out of range", trueIdx)
	}
	sim := crowd.NewSimulator(seed)
	for w := 0; w < 7; w++ {
		sim.AddWorker(crowd.Worker{ID: fmt.Sprintf("w%d", w), Accuracy: workerAccuracy, Cost: 1})
	}
	task := crowd.Task{ID: fmt.Sprintf("%d/%s", entity, attr), Candidates: cands, Truth: trueIdx}
	out := sim.Resolve([]crowd.Task{task}, budget, crowd.AllocAdaptive)
	res := CrowdOutcome{Asks: out.Asks, Spent: out.Spent}
	if v, ok := out.Answers[task.ID]; ok {
		res.Value = v
		res.Agreement = out.Agreement[task.ID]
	}
	return res, nil
}

// PredictedLink is one suggested edge with its confidence.
type PredictedLink struct {
	From       model.EntityID
	Predicate  string
	To         model.EntityID
	Confidence model.Fuzzy
}

// SuggestLinks trains the co-occurrence link predictor on the current
// graph and proposes up to k missing pred-edges from the entity, using the
// reasoner's (asserted + inferred) types.
func (db *DB) SuggestLinks(from model.EntityID, pred string, k int) []PredictedLink {
	db.mu.RLock()
	defer db.mu.RUnlock()
	lp := semantic.NewLinkPredictor()
	typesOf := db.reasoner.EntityTypes
	lp.Train(db.graph, typesOf)
	var out []PredictedLink
	for _, s := range lp.Suggest(db.graph, from, pred, typesOf, k) {
		out = append(out, PredictedLink{From: s.From, Predicate: s.Predicate, To: s.To, Confidence: s.Confidence})
	}
	return out
}

// EnrichPredictedLinks adds every suggestion with confidence >= minConf as
// a real (confidence-weighted, source "predicted") edge for every entity
// holding the role's domain concept, re-materializing inference over the
// touched entities. It returns the number of edges added. This is the
// enrichment channel that changes query answers without any client write —
// exactly the non-determinism FS.11's isolation levels arbitrate.
func (db *DB) EnrichPredictedLinks(pred string, perEntity int, minConf model.Fuzzy) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	lp := semantic.NewLinkPredictor()
	typesOf := db.reasoner.EntityTypes
	lp.Train(db.graph, typesOf)

	domains := db.onto.DomainsOf(pred)
	var candidates []model.EntityID
	if len(domains) > 0 {
		seen := map[model.EntityID]bool{}
		for _, d := range domains {
			for _, id := range db.reasoner.Instances(d) {
				if !seen[id] {
					seen[id] = true
					candidates = append(candidates, id)
				}
			}
		}
	} else {
		candidates = db.graph.EntityIDs()
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	added := 0
	var touched []model.EntityID
	for _, from := range candidates {
		for _, s := range lp.Suggest(db.graph, from, pred, typesOf, perEntity) {
			if s.Confidence < minConf {
				continue
			}
			err := db.graph.AddEdge(graph.Edge{
				From: s.From, Predicate: s.Predicate, To: model.Ref(s.To),
				Source: "predicted", Confidence: s.Confidence,
			})
			if err != nil {
				return added, err
			}
			added++
			touched = append(touched, s.From, s.To)
		}
	}
	if added > 0 {
		db.reasoner.MaterializeEntities(touched)
		db.matCache.InvalidateAll()
	}
	return added, nil
}
