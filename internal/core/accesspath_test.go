package core

import (
	"fmt"
	"strings"
	"testing"

	"scdb/internal/datagen"
	"scdb/internal/storage"
)

// openLifeSciWith opens a lifesci engine with extra option tweaks and the
// materialization cache off (so repeated statements actually execute).
func openLifeSciWith(t *testing.T, tweak func(*Options)) *DB {
	t.Helper()
	opts := lifesciOptions("")
	opts.DisableMatCache = true
	if tweak != nil {
		tweak(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPlanCacheHitAndInvalidation: the second execution of a statement
// reuses the cached plan; any ontology or catalog change invalidates it.
func TestPlanCacheHitAndInvalidation(t *testing.T) {
	db := openLifeSciWith(t, nil)
	const q = "SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name"

	first, info, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.PlanCached {
		t.Error("first execution must plan from scratch")
	}
	second, info, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.PlanCached {
		t.Error("second execution must reuse the cached plan")
	}
	if renderRows(first) != renderRows(second) {
		t.Errorf("cached plan changed the answer:\n%s\nvs\n%s", renderRows(first), renderRows(second))
	}
	if st := db.PlanCacheStats(); st.Hits == 0 || st.Size == 0 {
		t.Errorf("PlanCacheStats = %+v", st)
	}

	// A TBox mutation bumps the ontology version: the old key never matches
	// again, so the next run re-plans against the new semantics.
	db.Ontology().DeclareConcept("FreshConcept")
	if _, info, err = db.Query(q); err != nil {
		t.Fatal(err)
	}
	if info.PlanCached {
		t.Error("ontology change must invalidate the cached plan")
	}
	if _, info, err = db.Query(q); err != nil {
		t.Fatal(err)
	}
	if !info.PlanCached {
		t.Error("re-planned statement must cache again")
	}

	// A catalog change (new table) bumps the schema version.
	if _, err := db.Store().CreateTable("fresh_table"); err != nil {
		t.Fatal(err)
	}
	if _, info, err = db.Query(q); err != nil {
		t.Fatal(err)
	}
	if info.PlanCached {
		t.Error("schema change must invalidate the cached plan")
	}
}

// TestPlanCacheBoundedAndDisabled: the cache never exceeds its capacity,
// and DisablePlanCache re-plans every statement.
func TestPlanCacheBoundedAndDisabled(t *testing.T) {
	db := openLifeSciWith(t, func(o *Options) { o.PlanCacheSize = 2 })
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("SELECT name FROM drugbank ORDER BY name LIMIT %d", i+1)
		if _, _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.PlanCacheStats(); st.Size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", st.Size)
	}

	off := openLifeSciWith(t, func(o *Options) { o.DisablePlanCache = true })
	const q = "SELECT name FROM drugbank ORDER BY name"
	for i := 0; i < 2; i++ {
		_, info, err := off.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if info.PlanCached {
			t.Errorf("run %d: DisablePlanCache must re-plan", i)
		}
	}
	if st := off.PlanCacheStats(); st.Size != 0 {
		t.Errorf("disabled cache holds %d plans", st.Size)
	}
}

// TestEplainStatementsNotPlanCached: EXPLAIN variants are never cached (the
// cached entry would carry no operator stats) and never hit.
func TestExplainStatementsNotPlanCached(t *testing.T) {
	db := openLifeSciWith(t, nil)
	for i := 0; i < 2; i++ {
		_, info, err := db.Query("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM drugbank")
		if err != nil {
			t.Fatal(err)
		}
		if info.PlanCached {
			t.Errorf("run %d: EXPLAIN ANALYZE must not be plan-cached", i)
		}
	}
}

// TestAccessPathDifferential: the full SCQL corpus must answer
// byte-identically with pruning disabled, with index scans disabled, and
// with access-path planning off entirely. (The corpus aggregates are
// integer COUNTs with explicit ORDER BY, so results are order- and
// merge-insensitive across plan shapes.)
func TestAccessPathDifferential(t *testing.T) {
	baseline := openLifeSciWith(t, nil)
	variants := map[string]*DB{
		"no-pruning":      openLifeSciWith(t, func(o *Options) { o.DisableZonePruning = true }),
		"no-index":        openLifeSciWith(t, func(o *Options) { o.DisableIndexScan = true }),
		"no-access-paths": openLifeSciWith(t, func(o *Options) { o.DisableAccessPaths = true }),
	}
	// Pin indexes so the default engine exercises the index path even on
	// these small tables (auto-curation requires 64+ rows).
	for _, tbl := range []string{"drugbank", "ctd", "uniprot"} {
		tb, ok := baseline.Store().Table(tbl)
		if !ok {
			t.Fatalf("missing table %q", tbl)
		}
		if err := tb.CreateIndex("name", storage.IndexHash); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range engineCorpus {
		want, _, err := baseline.Query(src)
		if err != nil {
			t.Fatalf("baseline %q: %v", src, err)
		}
		for name, db := range variants {
			got, _, err := db.Query(src)
			if err != nil {
				t.Fatalf("%s %q: %v", name, src, err)
			}
			if renderRows(got) != renderRows(want) {
				t.Errorf("%s diverged on %q:\nbaseline:\n%s\n%s:\n%s",
					name, src, renderRows(want), name, renderRows(got))
			}
		}
		// Run the baseline again so the second pass goes through the plan
		// cache — cached plans must not change answers either.
		again, _, err := baseline.Query(src)
		if err != nil {
			t.Fatalf("baseline repeat %q: %v", src, err)
		}
		if renderRows(again) != renderRows(want) {
			t.Errorf("plan-cached repeat diverged on %q", src)
		}
	}
}

// TestExplainAnalyzeIndexScan: equality predicates plan as IndexScan, and
// the ANALYZE profile reports the chosen index and pruning counters.
func TestExplainAnalyzeIndexScan(t *testing.T) {
	db := openLifeSciWith(t, nil)
	tb, _ := db.Store().Table("drugbank")
	if err := tb.CreateIndex("name", storage.IndexHash); err != nil {
		t.Fatal(err)
	}
	res, info, err := db.Query("EXPLAIN ANALYZE SELECT name FROM drugbank WHERE name = 'Warfarin'")
	if err != nil {
		t.Fatal(err)
	}
	text := renderRows(res)
	for _, want := range []string{"IndexScan drugbank", "pruned=", "index: drugbank.name(hash)"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, text)
		}
	}
	if info.OperatorStats == nil {
		t.Fatal("no operator stats")
	}
	// The plain plan shows the pushed predicate on the IndexScan node.
	ex, err := db.Explain("SELECT name FROM drugbank WHERE name = 'Warfarin'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Plan, "IndexScan drugbank") {
		t.Errorf("EXPLAIN plan lacks IndexScan:\n%s", ex.Plan)
	}
	// The executed query answered correctly through the index.
	rows, _, err := db.Query("SELECT name FROM drugbank WHERE name = 'Warfarin'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 {
		t.Errorf("rows = %v", rows.Rows)
	}
	stats := db.IndexStats()
	var hit bool
	for _, st := range stats {
		if st.Table == "drugbank" && st.Attr == "name" && st.Hits > 0 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("index never credited a hit: %+v", stats)
	}
}
