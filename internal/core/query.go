package core

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scdb/internal/model"
	"scdb/internal/obs"
	"scdb/internal/optimizer"
	"scdb/internal/query"
	"scdb/internal/storage"
)

// QueryInfo reports how a query was answered: the final plan, the
// optimizer rewrites, cache behaviour, the answer mode, and — when the
// statement executed — the per-operator runtime statistics tree.
type QueryInfo struct {
	Plan             string
	Rules            []string
	EstimatedCost    float64
	EstimatedMorsels int
	CacheHit         bool
	// PlanCached reports that lex/parse/optimize was skipped because the
	// plan cache held this statement at the current schema and ontology
	// versions (the statement still executed, unlike CacheHit).
	PlanCached    bool
	Mode          query.AnswerMode
	OperatorStats *query.OpStats
}

// execOptions maps the engine's knobs onto the executor's.
func (db *DB) execOptions(ctx context.Context, stmt *query.SelectStmt) query.ExecOptions {
	p := db.opts.Parallelism
	if p <= 0 {
		p = runtime.NumCPU()
	}
	return query.ExecOptions{
		Semantic:    stmt.Semantics,
		Parallelism: p,
		MorselSize:  db.opts.MorselSize,
		Ctx:         ctx,
	}
}

// Query parses, optimizes, and executes one SCQL statement. An EXPLAIN
// prefix returns the optimized plan as rows instead of executing; EXPLAIN
// ANALYZE executes and returns the per-operator stats tree as rows.
func (db *DB) Query(src string) (*query.Result, *QueryInfo, error) {
	return db.QueryCtx(context.Background(), src)
}

// QueryCtx is Query with end-to-end cancellation: the context is observed
// by the executor's workers between morsels and by the storage scans
// between chunks, so a canceled or deadline-expired statement stops
// consuming CPU within one morsel boundary and returns the context's
// error. This is the entry point the network service layer drives.
func (db *DB) QueryCtx(ctx context.Context, src string) (*query.Result, *QueryInfo, error) {
	return db.queryCtx(ctx, src, nil)
}

// QueryStreamCtx executes one statement and delivers result rows to emit
// in columnar batches as they drain off the morsel executor, instead of
// materializing the whole result first. cols is identical on every call;
// a statement with no rows never calls emit (the returned columns cover
// that case). emit returning false aborts the query with
// query.ErrEmitStopped. Emitted row slices are shared with the
// materialization cache and must not be mutated.
//
// Statements that answer from materialized text (EXPLAIN, TRACE) or from
// the result cache still stream: their rows are chunked through emit, so a
// sink sees one uniform shape for every statement.
func (db *DB) QueryStreamCtx(ctx context.Context, src string, emit func(cols []string, batch [][]model.Value) bool) ([]string, *QueryInfo, error) {
	res, info, err := db.queryCtx(ctx, src, emit)
	if err != nil {
		return nil, info, err
	}
	return res.Columns, info, nil
}

// emitResultChunks streams an already-materialized result through emit in
// morsel-size chunks.
func emitResultChunks(res *query.Result, size int, emit func([]string, [][]model.Value) bool) error {
	if size <= 0 {
		size = query.DefaultMorselSize
	}
	for lo := 0; lo < len(res.Rows); lo += size {
		hi := lo + size
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		if !emit(res.Columns, res.Rows[lo:hi]) {
			return query.ErrEmitStopped
		}
	}
	return nil
}

// queryCtx is the shared spine of QueryCtx and QueryStreamCtx. With a nil
// emit the result is fully materialized; with emit set, executed rows
// stream through it (and are also accumulated so the materialization cache
// stays populated — the batches share row slices, so this costs one slice
// append per batch).
func (db *DB) queryCtx(ctx context.Context, src string, emit func([]string, [][]model.Value) bool) (*query.Result, *QueryInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	info := &QueryInfo{}
	planStart := time.Now()

	// Plan-cache probe before any lexing: the key is the raw statement
	// text plus the schema and ontology versions, so a hit means the
	// cached statement and optimized plan are still valid verbatim.
	// EXPLAIN statements are never cached, so they can't hit either.
	var stmt *query.SelectStmt
	var plan query.Node
	pk := planKey{src: src, schema: db.store.SchemaVersion(), onto: db.onto.Version()}
	if !db.opts.DisablePlanCache {
		if ent, ok := db.plans.get(pk); ok {
			stmt, plan = ent.stmt, ent.plan
			info.Plan = ent.planText
			info.Rules = ent.rules
			info.EstimatedCost = ent.cost
			info.EstimatedMorsels = ent.morsels
			info.PlanCached = true
		}
	}
	if stmt == nil {
		var err error
		stmt, err = query.Parse(src)
		if err != nil {
			return nil, nil, err
		}
	}
	info.Mode = stmt.Mode

	// TRACE: adopt the trace the service layer opened (it already holds
	// frame-decode and admission-wait spans) or start a fresh one for
	// embedded callers. tr stays nil for untraced statements, and every
	// span call below no-ops on nil — the plain path pays one extra
	// time.Now and nil checks, nothing else.
	var tr *obs.Trace
	if stmt.Trace {
		if tr = obs.FromContext(ctx); tr == nil {
			tr = obs.NewTrace()
		}
	}
	root := tr.Root("request")

	key := stmt.String()
	// Traced statements always execute: a materialization-cache hit would
	// short-circuit the very work the trace is meant to expose. (They may
	// still hit the plan cache — the trace reports that as plan_cached.)
	if !stmt.Explain && !stmt.Trace && !db.opts.DisableMatCache {
		if v, ok := db.matCache.Get(key); ok {
			info.CacheHit = true
			res := v.(*query.Result)
			if emit != nil {
				if err := emitResultChunks(res, db.opts.MorselSize, emit); err != nil {
					return nil, info, err
				}
			}
			return res, info, nil
		}
	}
	env := &queryEnv{db: db, ctx: ctx, mode: stmt.Mode, fuzzyT: stmt.FuzzyThreshold}
	if plan == nil {
		var err error
		plan, err = query.BuildPlan(stmt, env)
		if err != nil {
			return nil, nil, err
		}
		var rep *optimizer.Report
		plan, rep = optimizer.Optimize(plan, db.optimizerOptions(stmt))
		info.Plan = query.Explain(plan)
		info.Rules = rep.Rules
		info.EstimatedCost = rep.EstimatedCost
		info.EstimatedMorsels = rep.EstimatedMorsels
		if !stmt.Explain && !db.opts.DisablePlanCache {
			// Plans and statements are immutable after optimization, so the
			// cached entry can serve concurrent executions.
			db.plans.put(pk, &planEntry{
				stmt: stmt, plan: plan, planText: info.Plan, rules: info.Rules,
				cost: info.EstimatedCost, morsels: info.EstimatedMorsels,
			})
		}
	}
	planSpan := root.ChildDur("plan", time.Since(planStart))
	planSpan.SetBool("plan_cached", info.PlanCached)
	planSpan.SetInt("est_morsels", int64(info.EstimatedMorsels))
	// streamText hands a materialized text result (plans, traces) to the
	// sink in chunks, so streaming callers see one uniform shape.
	streamText := func(res *query.Result) (*query.Result, *QueryInfo, error) {
		if emit != nil {
			if err := emitResultChunks(res, db.opts.MorselSize, emit); err != nil {
				return nil, info, err
			}
		}
		return res, info, nil
	}
	if stmt.Explain && !stmt.Analyze {
		return streamText(planResult(info.Plan))
	}
	execSpan := root.Child("execute")
	opts := db.execOptions(ctx, stmt)
	// Plain statements stream straight off the executor; EXPLAIN ANALYZE
	// and TRACE answer with rendered text, so they materialize as before
	// and stream that text instead.
	stream := emit != nil && !stmt.Explain && !stmt.Trace
	var streamed [][]model.Value
	if stream {
		opts.EmitBatch = func(cols []string, batch [][]model.Value) bool {
			if !emit(cols, batch) {
				return false
			}
			// Keep the delivered rows (sharing the batch's row slices) so
			// the materialization cache is populated below.
			streamed = append(streamed, batch...)
			return true
		}
	}
	res, st, err := query.ExecuteOpts(plan, env, opts)
	execSpan.End()
	if err != nil {
		return nil, nil, err
	}
	info.OperatorStats = st
	if stmt.Explain { // EXPLAIN ANALYZE: rows are the annotated plan
		return streamText(planResult(st.Render()))
	}
	if stmt.Trace {
		execSpan.SetInt("rows_out", int64(len(res.Rows)))
		addOpSpans(execSpan, st)
		return streamText(traceResult(tr))
	}
	if stream {
		res.Rows = streamed
	}
	if !db.opts.DisableMatCache {
		db.matCache.Put(key, res, info.EstimatedCost)
	}
	return res, info, nil
}

// addOpSpans mirrors the executor's per-operator statistics tree as trace
// spans under the execute span. Each operator's Elapsed is busy time summed
// across workers, so these are attached as completed duration-only spans
// rather than wall-clock children.
func addOpSpans(parent *obs.Span, st *query.OpStats) {
	s := parent.ChildDur("op:"+st.Label, time.Duration(atomic.LoadInt64((*int64)(&st.Elapsed))))
	s.SetInt("rows_in", atomic.LoadInt64(&st.RowsIn))
	s.SetInt("rows_out", atomic.LoadInt64(&st.RowsOut))
	s.SetInt("morsels", atomic.LoadInt64(&st.Morsels))
	if st.ShowPruned {
		s.SetInt("pruned", st.Pruned)
	}
	if st.IndexName != "" {
		s.SetStr("index", st.IndexName)
	}
	for _, c := range st.Children {
		addOpSpans(s, c)
	}
}

// traceResult renders the span tree as a one-column result, one row per
// JSON line, so TRACE output flows through the ordinary result path (and
// over the wire) unchanged. The root span is still open here — the service
// layer closes it when the response goes out — so its dur_us reads as
// time-so-far at render.
func traceResult(tr *obs.Trace) *query.Result {
	res := &query.Result{Columns: []string{"trace"}}
	for _, line := range strings.Split(strings.TrimRight(tr.JSON(), "\n"), "\n") {
		res.Rows = append(res.Rows, []model.Value{model.String(line)})
	}
	return res
}

// planResult renders plan or stats text as a one-column result, one row
// per line, so EXPLAIN output flows through the ordinary result path.
func planResult(text string) *query.Result {
	res := &query.Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []model.Value{model.String(line)})
	}
	return res
}

// Explain returns the optimized plan and rewrite log without executing.
func (db *DB) Explain(src string) (*QueryInfo, error) {
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	env := &queryEnv{db: db, ctx: context.Background(), mode: stmt.Mode, fuzzyT: stmt.FuzzyThreshold}
	plan, err := query.BuildPlan(stmt, env)
	if err != nil {
		return nil, err
	}
	plan, rep := optimizer.Optimize(plan, db.optimizerOptions(stmt))
	return &QueryInfo{
		Plan:             query.Explain(plan),
		Rules:            rep.Rules,
		EstimatedCost:    rep.EstimatedCost,
		EstimatedMorsels: rep.EstimatedMorsels,
		Mode:             stmt.Mode,
	}, nil
}

// optimizerOptions wires the semantic layer into the optimizer. Semantic
// rewrites are only sound when ISA consults inference (WITH SEMANTICS), so
// they follow the statement's flag.
func (db *DB) optimizerOptions(stmt *query.SelectStmt) optimizer.Options {
	return optimizer.Options{
		DisableSemantic:    !stmt.Semantics || db.opts.DisableSemanticOpt,
		DisableAccessPaths: db.opts.DisableAccessPaths,
		Semantics:          db.onto,
		Stats:              dbStats{db},
	}
}

// dbStats feeds instance-layer cardinalities to the optimizer.
type dbStats struct{ db *DB }

func (s dbStats) TableCard(name string) int {
	if name == ClaimsTable {
		return len(s.db.worlds.Claims())
	}
	if t, ok := s.db.store.Table(name); ok {
		return t.Len()
	}
	return 0
}

func (s dbStats) TotalEntities() int { return s.db.graph.NumEntities() }

// queryEnv implements query.Env, query.Resolver, and query.MorselEnv over
// the engine, scoped to one statement's answer mode. Name-to-entity lookups
// are memoized per statement: REACHES('Osteosarcoma', ...) resolves its
// target once, not once per candidate row. The executor evaluates
// predicates from a pool of workers, so the memo is mutex-guarded.
type queryEnv struct {
	db *DB
	// ctx is the statement's cancellation scope, threaded into every
	// storage scan so canceled queries stop producing rows at the source.
	ctx    context.Context
	mode   query.AnswerMode
	fuzzyT float64

	namesMu sync.Mutex
	names   map[string]model.EntityID
}

func (e *queryEnv) lookupName(text string) model.EntityID {
	e.namesMu.Lock()
	if id, ok := e.names[text]; ok {
		e.namesMu.Unlock()
		return id
	}
	e.namesMu.Unlock()
	// Resolve outside the lock — the graph scan is the expensive part, and
	// concurrent duplicate lookups are deterministic and idempotent.
	id := e.db.lookupByText(text)
	e.namesMu.Lock()
	if e.names == nil {
		e.names = map[string]model.EntityID{}
	}
	e.names[text] = id
	e.namesMu.Unlock()
	return id
}

func (e *queryEnv) HasTable(name string) bool {
	if name == ClaimsTable {
		return true
	}
	_, ok := e.db.store.Table(name)
	return ok
}

func (e *queryEnv) HasConcept(name string) bool { return e.db.onto.HasConcept(name) }

func (e *queryEnv) ScanTable(name string) ([]model.Record, bool) {
	if name == ClaimsTable {
		return e.claimRows(), true
	}
	t, ok := e.db.store.Table(name)
	if !ok {
		return nil, false
	}
	var recs []model.Record
	t.Scan(func(_ storage.RowID, rec model.Record) bool {
		recs = append(recs, rec)
		return true
	})
	return recs, true
}

// ScanTableMorsels implements query.MorselEnv: the scan streams fixed-size
// chunks so binding and filtering pipeline with it on the executor's
// workers, and a satisfied LIMIT stops it early (emit returning false).
func (e *queryEnv) ScanTableMorsels(name string, size int, emit func([]model.Record) bool) bool {
	if name == ClaimsTable {
		// The virtual claims table is materialized by the fusion layer and
		// then chunked — answer-semantics filtering dominates its cost.
		emitChunks(e.claimRows(), size, emit)
		return true
	}
	t, ok := e.db.store.Table(name)
	if !ok {
		return false
	}
	t.ScanMorselsCtx(e.ctx, e.db.store.Now(), size, func(_ []storage.RowID, recs []model.Record) bool {
		return emit(recs)
	})
	return true
}

// ScanTablePushed implements query.IndexEnv: the storage layer answers
// with a candidate superset via secondary-index lookup and zone-map
// pruning (self-creating indexes from the access traffic this very call
// records). The virtual claims table has no storage access paths — it is
// materialized and chunked, and the executor's re-filter does the rest.
func (e *queryEnv) ScanTablePushed(name string, zone []query.ZoneConjunct, emit func([]model.Record) bool) (query.PushedScanInfo, bool) {
	if name == ClaimsTable {
		emitChunks(e.claimRows(), query.DefaultMorselSize, emit)
		return query.PushedScanInfo{}, true
	}
	t, ok := e.db.store.Table(name)
	if !ok {
		return query.PushedScanInfo{}, false
	}
	preds := make([]storage.ZonePred, len(zone))
	for i, z := range zone {
		preds[i] = storage.ZonePred{Attr: z.Attr, Op: z.Op, Val: z.Val, Vals: z.Vals}
	}
	si := t.ScanWhere(e.db.store.Now(), preds, storage.ScanOptions{
		NoPrune: e.db.opts.DisableZonePruning,
		NoIndex: e.db.opts.DisableIndexScan,
		NoAuto:  e.db.opts.DisableIndexScan,
		Ctx:     e.ctx,
	}, func(_ []storage.RowID, recs []model.Record) bool {
		return emit(recs)
	})
	return query.PushedScanInfo{Index: si.Index, Segments: si.Segments, Pruned: si.Pruned}, true
}

// emitChunks feeds an already-materialized record set to emit in morsels.
func emitChunks(recs []model.Record, size int, emit func([]model.Record) bool) {
	if size <= 0 {
		size = 1024
	}
	for lo := 0; lo < len(recs); lo += size {
		hi := lo + size
		if hi > len(recs) {
			hi = len(recs)
		}
		if !emit(recs[lo:hi]) {
			return
		}
	}
}

// claimRows materializes the claims virtual table under the statement's
// answer semantics (Section 4.2):
//
//	default       — every claim as a row;
//	UNDER CERTAIN — only claims from (entity, attr) groups where all
//	                sources agree (the classical certain answer);
//	UNDER FUZZY t — claims whose value is justified to degree >= t within
//	                some context class (parallel-world justification).
func (e *queryEnv) claimRows() []model.Record {
	w := e.db.worlds
	var rows []model.Record
	for _, c := range w.Claims() {
		include := false
		justification := 1.0
		switch e.mode {
		case query.AnswerDefault:
			include = true
		case query.AnswerCertain:
			val := c.Value
			include = w.NaiveCertain(c.Entity, c.Attr, func(v model.Value) bool {
				return model.Equal(v, val)
			})
		case query.AnswerFuzzy:
			val := c.Value
			j := w.Justified(c.Entity, c.Attr, func(v model.Value) model.Fuzzy {
				if model.Equal(v, val) {
					return 1
				}
				return 0
			})
			justification = float64(j.Degree)
			include = j.Degree.AtLeast(e.fuzzyT)
		}
		if !include {
			continue
		}
		rows = append(rows, model.Record{
			"entity":        model.Ref(c.Entity),
			"attr":          model.String(c.Attr),
			"value":         c.Value,
			"source":        model.String(c.Source),
			"context":       model.String(strings.Join(c.Context, "+")),
			"confidence":    model.Float(float64(c.Confidence)),
			"justification": model.Float(justification),
		})
	}
	return rows
}

func (e *queryEnv) ScanConcept(concept string, semantic bool) ([]model.Record, bool) {
	if !e.db.onto.HasConcept(concept) {
		return nil, false
	}
	var ids []model.EntityID
	if semantic {
		ids = e.db.reasoner.Instances(concept)
	} else {
		ids = e.db.graph.EntitiesByType(concept)
	}
	recs := make([]model.Record, 0, len(ids))
	for _, id := range ids {
		rec, ok := e.conceptRecord(id, semantic)
		if !ok {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, true
}

// ScanConceptMorsels implements query.MorselEnv for concept scans: entity
// records are built chunk by chunk so downstream operators overlap with
// record construction, and LIMIT stops the build early.
func (e *queryEnv) ScanConceptMorsels(concept string, semantic bool, size int, emit func([]model.Record) bool) bool {
	if !e.db.onto.HasConcept(concept) {
		return false
	}
	var ids []model.EntityID
	if semantic {
		ids = e.db.reasoner.Instances(concept)
	} else {
		ids = e.db.graph.EntitiesByType(concept)
	}
	if size <= 0 {
		size = 1024
	}
	batch := make([]model.Record, 0, size)
	for _, id := range ids {
		rec, ok := e.conceptRecord(id, semantic)
		if !ok {
			continue
		}
		batch = append(batch, rec)
		if len(batch) >= size {
			if e.ctx != nil && e.ctx.Err() != nil {
				return true
			}
			if !emit(batch) {
				return true
			}
			batch = make([]model.Record, 0, size)
		}
	}
	if len(batch) > 0 {
		emit(batch)
	}
	return true
}

// conceptRecord projects one entity into the concept-scan row shape.
func (e *queryEnv) conceptRecord(id model.EntityID, semantic bool) (model.Record, bool) {
	ent, ok := e.db.graph.Entity(id)
	if !ok {
		return nil, false
	}
	rec := ent.Attrs.Clone()
	rec["_id"] = model.Ref(ent.ID)
	rec["_key"] = model.String(ent.Key)
	rec["_source"] = model.String(ent.Source)
	rec["_types"] = e.typesList(ent.ID, semantic)
	return rec, true
}

func (e *queryEnv) typesList(id model.EntityID, semantic bool) model.Value {
	var names []string
	if semantic {
		names = e.db.reasoner.EntityTypes(id)
	} else if ent, ok := e.db.graph.Entity(id); ok {
		names = append([]string(nil), ent.Types...)
	}
	sort.Strings(names)
	vals := make([]model.Value, len(names))
	for i, n := range names {
		vals[i] = model.String(n)
	}
	return model.List(vals...)
}

func (e *queryEnv) IsA(v model.Value, concept string, semantic bool) model.Truth {
	id, ok := v.AsRef()
	if !ok {
		return model.Unknown
	}
	if semantic {
		return model.TruthOf(e.db.reasoner.HasType(id, concept))
	}
	ent, ok := e.db.graph.Entity(id)
	if !ok {
		return model.Unknown
	}
	return model.TruthOf(ent.HasType(concept))
}

func (e *queryEnv) Reaches(from model.Value, target string, k int, pred string) model.Truth {
	id, ok := from.AsRef()
	if !ok {
		return model.Unknown
	}
	tid := e.lookupName(target)
	if tid == model.NoEntity {
		return model.False
	}
	// Unpredicated reachability runs over the locality-optimized CSR
	// snapshot (OS.2); the snapshot is cached per graph version, so the
	// update-friendly mutable graph stays the system of record.
	if pred == "" {
		if csr := e.db.csrSnapshot(); csr != nil {
			start := e.db.graph.Resolve(id)
			tid = e.db.graph.Resolve(tid)
			if start == tid {
				return model.True
			}
			reached, _ := csr.KHop(start, k, "")
			for _, r := range reached {
				if r == tid {
					return model.True
				}
			}
			return model.False
		}
	}
	return model.TruthOf(e.db.graph.Reaches(id, tid, k, pred))
}

func (e *queryEnv) Linked(a, b model.Value, pred string) model.Truth {
	ia, ok1 := a.AsRef()
	ib, ok2 := b.AsRef()
	if !ok1 || !ok2 {
		return model.Unknown
	}
	ib = e.db.graph.Resolve(ib)
	for _, edge := range e.db.graph.Edges(ia) {
		if pred != "" && edge.Predicate != pred {
			continue
		}
		if to, ok := edge.To.AsRef(); ok && e.db.graph.Resolve(to) == ib {
			return model.True
		}
	}
	return model.False
}

func (e *queryEnv) TypesOf(v model.Value, semantic bool) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	return e.typesList(id, semantic)
}

func (e *queryEnv) PredictType(v model.Value) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	ent, ok := e.db.graph.Entity(id)
	if !ok {
		return model.Null()
	}
	tp := e.db.typePredictor()
	if tp == nil {
		return model.Null()
	}
	preds := tp.Predict(ent, 1)
	if len(preds) == 0 {
		return model.Null()
	}
	return model.String(preds[0].Concept)
}
