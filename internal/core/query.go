package core

import (
	"sort"
	"strings"

	"scdb/internal/model"
	"scdb/internal/optimizer"
	"scdb/internal/query"
	"scdb/internal/storage"
)

// QueryInfo reports how a query was answered: the final plan, the
// optimizer rewrites, cache behaviour, and the answer mode.
type QueryInfo struct {
	Plan          string
	Rules         []string
	EstimatedCost float64
	CacheHit      bool
	Mode          query.AnswerMode
}

// Query parses, optimizes, and executes one SCQL statement.
func (db *DB) Query(src string) (*query.Result, *QueryInfo, error) {
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	info := &QueryInfo{Mode: stmt.Mode}
	key := stmt.String()
	if !db.opts.DisableMatCache {
		if v, ok := db.matCache.Get(key); ok {
			info.CacheHit = true
			return v.(*query.Result), info, nil
		}
	}
	env := &queryEnv{db: db, mode: stmt.Mode, fuzzyT: stmt.FuzzyThreshold}
	plan, err := query.BuildPlan(stmt, env)
	if err != nil {
		return nil, nil, err
	}
	plan, rep := optimizer.Optimize(plan, db.optimizerOptions(stmt))
	res, err := query.Execute(plan, env, stmt.Semantics)
	if err != nil {
		return nil, nil, err
	}
	info.Plan = query.Explain(plan)
	info.Rules = rep.Rules
	info.EstimatedCost = rep.EstimatedCost
	if !db.opts.DisableMatCache {
		db.matCache.Put(key, res, rep.EstimatedCost)
	}
	return res, info, nil
}

// Explain returns the optimized plan and rewrite log without executing.
func (db *DB) Explain(src string) (*QueryInfo, error) {
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	env := &queryEnv{db: db, mode: stmt.Mode, fuzzyT: stmt.FuzzyThreshold}
	plan, err := query.BuildPlan(stmt, env)
	if err != nil {
		return nil, err
	}
	plan, rep := optimizer.Optimize(plan, db.optimizerOptions(stmt))
	return &QueryInfo{
		Plan:          query.Explain(plan),
		Rules:         rep.Rules,
		EstimatedCost: rep.EstimatedCost,
		Mode:          stmt.Mode,
	}, nil
}

// optimizerOptions wires the semantic layer into the optimizer. Semantic
// rewrites are only sound when ISA consults inference (WITH SEMANTICS), so
// they follow the statement's flag.
func (db *DB) optimizerOptions(stmt *query.SelectStmt) optimizer.Options {
	return optimizer.Options{
		DisableSemantic: !stmt.Semantics || db.opts.DisableSemanticOpt,
		Semantics:       db.onto,
		Stats:           dbStats{db},
	}
}

// dbStats feeds instance-layer cardinalities to the optimizer.
type dbStats struct{ db *DB }

func (s dbStats) TableCard(name string) int {
	if name == ClaimsTable {
		return len(s.db.worlds.Claims())
	}
	if t, ok := s.db.store.Table(name); ok {
		return t.Len()
	}
	return 0
}

func (s dbStats) TotalEntities() int { return s.db.graph.NumEntities() }

// queryEnv implements query.Env and query.Resolver over the engine, scoped
// to one statement's answer mode. Name-to-entity lookups are memoized per
// statement: REACHES('Osteosarcoma', ...) resolves its target once, not
// once per candidate row.
type queryEnv struct {
	db     *DB
	mode   query.AnswerMode
	fuzzyT float64
	names  map[string]model.EntityID
}

func (e *queryEnv) lookupName(text string) model.EntityID {
	if id, ok := e.names[text]; ok {
		return id
	}
	id := e.db.lookupByText(text)
	if e.names == nil {
		e.names = map[string]model.EntityID{}
	}
	e.names[text] = id
	return id
}

func (e *queryEnv) HasTable(name string) bool {
	if name == ClaimsTable {
		return true
	}
	_, ok := e.db.store.Table(name)
	return ok
}

func (e *queryEnv) HasConcept(name string) bool { return e.db.onto.HasConcept(name) }

func (e *queryEnv) ScanTable(name string) ([]model.Record, bool) {
	if name == ClaimsTable {
		return e.claimRows(), true
	}
	t, ok := e.db.store.Table(name)
	if !ok {
		return nil, false
	}
	var recs []model.Record
	t.Scan(func(_ storage.RowID, rec model.Record) bool {
		recs = append(recs, rec)
		return true
	})
	return recs, true
}

// claimRows materializes the claims virtual table under the statement's
// answer semantics (Section 4.2):
//
//	default       — every claim as a row;
//	UNDER CERTAIN — only claims from (entity, attr) groups where all
//	                sources agree (the classical certain answer);
//	UNDER FUZZY t — claims whose value is justified to degree >= t within
//	                some context class (parallel-world justification).
func (e *queryEnv) claimRows() []model.Record {
	w := e.db.worlds
	var rows []model.Record
	for _, c := range w.Claims() {
		include := false
		justification := 1.0
		switch e.mode {
		case query.AnswerDefault:
			include = true
		case query.AnswerCertain:
			val := c.Value
			include = w.NaiveCertain(c.Entity, c.Attr, func(v model.Value) bool {
				return model.Equal(v, val)
			})
		case query.AnswerFuzzy:
			val := c.Value
			j := w.Justified(c.Entity, c.Attr, func(v model.Value) model.Fuzzy {
				if model.Equal(v, val) {
					return 1
				}
				return 0
			})
			justification = float64(j.Degree)
			include = j.Degree.AtLeast(e.fuzzyT)
		}
		if !include {
			continue
		}
		rows = append(rows, model.Record{
			"entity":        model.Ref(c.Entity),
			"attr":          model.String(c.Attr),
			"value":         c.Value,
			"source":        model.String(c.Source),
			"context":       model.String(strings.Join(c.Context, "+")),
			"confidence":    model.Float(float64(c.Confidence)),
			"justification": model.Float(justification),
		})
	}
	return rows
}

func (e *queryEnv) ScanConcept(concept string, semantic bool) ([]model.Record, bool) {
	if !e.db.onto.HasConcept(concept) {
		return nil, false
	}
	var ids []model.EntityID
	if semantic {
		ids = e.db.reasoner.Instances(concept)
	} else {
		ids = e.db.graph.EntitiesByType(concept)
	}
	recs := make([]model.Record, 0, len(ids))
	for _, id := range ids {
		ent, ok := e.db.graph.Entity(id)
		if !ok {
			continue
		}
		rec := ent.Attrs.Clone()
		rec["_id"] = model.Ref(ent.ID)
		rec["_key"] = model.String(ent.Key)
		rec["_source"] = model.String(ent.Source)
		types := e.typesList(ent.ID, semantic)
		rec["_types"] = types
		recs = append(recs, rec)
	}
	return recs, true
}

func (e *queryEnv) typesList(id model.EntityID, semantic bool) model.Value {
	var names []string
	if semantic {
		names = e.db.reasoner.EntityTypes(id)
	} else if ent, ok := e.db.graph.Entity(id); ok {
		names = append([]string(nil), ent.Types...)
	}
	sort.Strings(names)
	vals := make([]model.Value, len(names))
	for i, n := range names {
		vals[i] = model.String(n)
	}
	return model.List(vals...)
}

func (e *queryEnv) IsA(v model.Value, concept string, semantic bool) model.Truth {
	id, ok := v.AsRef()
	if !ok {
		return model.Unknown
	}
	if semantic {
		return model.TruthOf(e.db.reasoner.HasType(id, concept))
	}
	ent, ok := e.db.graph.Entity(id)
	if !ok {
		return model.Unknown
	}
	return model.TruthOf(ent.HasType(concept))
}

func (e *queryEnv) Reaches(from model.Value, target string, k int, pred string) model.Truth {
	id, ok := from.AsRef()
	if !ok {
		return model.Unknown
	}
	tid := e.lookupName(target)
	if tid == model.NoEntity {
		return model.False
	}
	// Unpredicated reachability runs over the locality-optimized CSR
	// snapshot (OS.2); the snapshot is cached per graph version, so the
	// update-friendly mutable graph stays the system of record.
	if pred == "" {
		if csr := e.db.csrSnapshot(); csr != nil {
			start := e.db.graph.Resolve(id)
			tid = e.db.graph.Resolve(tid)
			if start == tid {
				return model.True
			}
			reached, _ := csr.KHop(start, k, "")
			for _, r := range reached {
				if r == tid {
					return model.True
				}
			}
			return model.False
		}
	}
	return model.TruthOf(e.db.graph.Reaches(id, tid, k, pred))
}

func (e *queryEnv) Linked(a, b model.Value, pred string) model.Truth {
	ia, ok1 := a.AsRef()
	ib, ok2 := b.AsRef()
	if !ok1 || !ok2 {
		return model.Unknown
	}
	ib = e.db.graph.Resolve(ib)
	for _, edge := range e.db.graph.Edges(ia) {
		if pred != "" && edge.Predicate != pred {
			continue
		}
		if to, ok := edge.To.AsRef(); ok && e.db.graph.Resolve(to) == ib {
			return model.True
		}
	}
	return model.False
}

func (e *queryEnv) TypesOf(v model.Value, semantic bool) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	return e.typesList(id, semantic)
}

func (e *queryEnv) PredictType(v model.Value) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	ent, ok := e.db.graph.Entity(id)
	if !ok {
		return model.Null()
	}
	tp := e.db.typePredictor()
	if tp == nil {
		return model.Null()
	}
	preds := tp.Predict(ent, 1)
	if len(preds) == 0 {
		return model.Null()
	}
	return model.String(preds[0].Concept)
}
