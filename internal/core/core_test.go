package core

import (
	"errors"
	"strings"
	"testing"

	"scdb/internal/curate"
	"scdb/internal/datagen"
	"scdb/internal/extract"
	"scdb/internal/fusion"
	"scdb/internal/model"
	"scdb/internal/txn"
)

// lifesciOptions is the standard engine configuration over Figure-2 data.
func lifesciOptions(dir string) Options {
	return Options{
		Dir:      dir,
		Ontology: datagen.LifeSciOntology(),
		LinkRules: []curate.LinkRule{
			{Predicate: "targets_symbol", EdgePredicate: "targets", TargetAttrs: []string{"symbol", "gene_symbol"}, TargetType: "Gene"},
			{Predicate: "treats_name", EdgePredicate: "treats", TargetAttrs: []string{"disease_name"}},
		},
		Patterns: []extract.Pattern{
			{Trigger: "treats", Predicate: "treats"},
			{Trigger: "targets", Predicate: "targets"},
		},
	}
}

// openLifeSci opens an engine and ingests the canonical Figure-2 sources.
func openLifeSci(t *testing.T) *DB {
	t.Helper()
	db, err := Open(lifesciOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestEndToEndRelationalQuery(t *testing.T) {
	db := openLifeSci(t)
	res, info, err := db.Query("SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Warfarin")) {
		t.Errorf("rows = %v", res.Rows)
	}
	if info.CacheHit {
		t.Error("first execution must miss the cache")
	}
	// Second run hits the materialization cache.
	_, info, err = db.Query("SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Error("repeat query must hit the cache")
	}
}

func TestConceptScanWithInference(t *testing.T) {
	db := openLifeSci(t)
	// Asserted Chemical membership only covers entities typed Chemical
	// directly (none); inference covers all drugs.
	res, _, err := db.Query(`SELECT _key FROM Chemical`)
	if err != nil {
		t.Fatal(err)
	}
	asserted := len(res.Rows)
	res, _, err = db.Query(`SELECT _key FROM Chemical WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) <= asserted {
		t.Errorf("inference must widen the extent: %d vs %d", len(res.Rows), asserted)
	}
	if len(res.Rows) < 5 {
		t.Errorf("all five drugs are Chemicals, got %d", len(res.Rows))
	}
}

func TestUnifiedQueryAcrossLayers(t *testing.T) {
	db := openLifeSci(t)
	// FS.5's unified language: relational scan + semantic concept source +
	// graph reachability in one statement. Which drugs can reach
	// Osteosarcoma within 3 hops (targets → associatedWith)?
	res, _, err := db.Query(`SELECT name FROM Drug AS d WHERE REACHES(d._id, 'Osteosarcoma', 3) ORDER BY name WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		if s, ok := r[0].AsString(); ok {
			names[s] = true
		}
	}
	// Warfarin targets TP53, TP53 associatedWith Osteosarcoma; and
	// Methotrexate treats Osteosarcoma directly (1 hop).
	if !names["Warfarin"] {
		t.Errorf("Warfarin must reach Osteosarcoma: %v", names)
	}
	if !names["Methotrexate"] {
		t.Errorf("Methotrexate treats Osteosarcoma: %v", names)
	}
}

func TestSemanticOptimizerWired(t *testing.T) {
	db := openLifeSci(t)
	info, err := db.Explain(`SELECT name FROM drugbank WHERE ISA(x, 'Drug') AND ISA(x, 'Osteosarcoma') WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Plan, "Empty") {
		t.Errorf("disjoint ISA not proven empty:\n%s\nrules: %v", info.Plan, info.Rules)
	}
	// Without WITH SEMANTICS the rewrite must not fire (asserted-only ISA
	// has different semantics).
	info, err = db.Explain(`SELECT name FROM drugbank WHERE ISA(x, 'Drug') AND ISA(x, 'Osteosarcoma')`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(info.Plan, "Empty") {
		t.Error("semantic rewrite fired without WITH SEMANTICS")
	}
}

func TestClaimsTableAnswerModes(t *testing.T) {
	db := openLifeSci(t)
	warfarin, ok := db.LookupEntity("drugbank", "DB00682")
	if !ok {
		t.Fatal("warfarin missing")
	}
	// The paper's parallel worlds: population-scoped dose claims.
	for _, c := range []struct {
		src, pop string
		dose     float64
	}{
		{"trials-us", "White", 5.1}, {"trials-asia", "Asian", 3.4}, {"trials-africa", "Black", 6.1},
	} {
		db.AddClaim(fusion.Claim{Source: c.src, Entity: warfarin.ID, Attr: "dose", Value: model.Float(c.dose), Context: []string{c.pop}})
	}
	// Population classes must be disjoint for context classing.
	po := datagen.PopulationOntology()
	for _, pair := range [][2]string{{"White", "Asian"}, {"White", "Black"}, {"Asian", "Black"}} {
		db.Ontology().SubConceptOf(pair[0], "Population")
		db.Ontology().SubConceptOf(pair[1], "Population")
		db.Ontology().Disjoint(pair[0], pair[1])
	}
	_ = po

	res, _, err := db.Query(`SELECT value, context FROM claims ORDER BY value`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("default mode rows = %v", res.Rows)
	}
	// UNDER CERTAIN: no unanimous agreement → empty.
	res, _, err = db.Query(`SELECT value FROM claims UNDER CERTAIN`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("certain mode rows = %v (the paper's naive false)", res.Rows)
	}
	// UNDER FUZZY(0.9): each claim fully supported within its own disjoint
	// context class → all three justified.
	res, _, err = db.Query(`SELECT value, justification FROM claims UNDER FUZZY(0.9)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("fuzzy mode rows = %v", res.Rows)
	}
}

func TestJustifiedAnswerEndToEnd(t *testing.T) {
	db := openLifeSci(t)
	warfarin, _ := db.LookupEntity("drugbank", "DB00682")
	for _, pair := range [][2]string{{"White", "Asian"}, {"White", "Black"}, {"Asian", "Black"}} {
		db.Ontology().Disjoint(pair[0], pair[1])
	}
	for _, c := range []struct {
		src, pop string
		dose     float64
	}{
		{"trials-us", "White", 5.1}, {"trials-asia", "Asian", 3.4}, {"trials-africa", "Black", 6.1},
	} {
		db.Ontology().SubConceptOf(c.pop, "Population")
		db.AddClaim(fusion.Claim{Source: c.src, Entity: warfarin.ID, Attr: "dose", Value: model.Float(c.dose), Context: []string{c.pop}})
	}
	ans, err := db.JustifiedAnswer("Warfarin", "dose", 5.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.NaiveCertain {
		t.Error("naive certain must be false")
	}
	if ans.Justified.Degree < 0.79 || ans.Justified.Degree > 0.81 {
		t.Errorf("justified degree = %v", ans.Justified.Degree)
	}
	if len(ans.Refinements) == 0 || !ans.Sensitive {
		t.Errorf("refinement loop incomplete: %+v", ans)
	}
	if _, err := db.JustifiedAnswer("Nonexistium", "dose", 1, 1); err == nil {
		t.Error("unknown entity must error")
	}
}

func TestIngestInvalidatesCache(t *testing.T) {
	db := openLifeSci(t)
	q := "SELECT COUNT(*) AS n FROM drugbank"
	res1, _, _ := db.Query(q)
	n1, _ := res1.Rows[0][0].AsInt()
	// New delivery adds records; the cached count must not survive.
	if err := db.Ingest(datagen.Dataset{
		Source: "drugbank",
		Entities: []datagen.EntitySpec{{
			Key: "DBNEW", Types: []string{"Drug"},
			Attrs: model.Record{"name": model.String("Novel compound")},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	res2, info, _ := db.Query(q)
	if info.CacheHit {
		t.Error("cache must be invalidated by ingestion")
	}
	n2, _ := res2.Rows[0][0].AsInt()
	if n2 != n1+1 {
		t.Errorf("count %d → %d, want +1", n1, n2)
	}
}

func TestTransactionsWithEnrichmentChurn(t *testing.T) {
	db := openLifeSci(t)
	// A snapshot transaction that consulted semantics aborts when curation
	// advances the enrichment clock mid-flight (FS.11).
	tx := db.Begin(txn.Snapshot)
	tx.MarkSemanticRead()
	if err := db.Ingest(datagen.Dataset{
		Source:   "late",
		Entities: []datagen.EntitySpec{{Key: "k1", Types: []string{"Drug"}, Attrs: model.Record{"name": model.String("Latecomer")}}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := tx.Commit()
	if !errors.Is(err, txn.ErrEnrichmentPhantom) {
		t.Fatalf("want enrichment phantom, got %v", err)
	}
	// The relaxed level commits with a staleness bound.
	tx2 := db.Begin(txn.EventualEnrichment)
	tx2.MarkSemanticRead()
	db.Ingest(datagen.Dataset{
		Source:   "late",
		Entities: []datagen.EntitySpec{{Key: "k2", Types: []string{"Drug"}, Attrs: model.Record{"name": model.String("Latecomer II")}}},
	})
	info, err := tx2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if info.EnrichmentStaleness == 0 {
		t.Error("staleness bound missing")
	}
	st := db.TxnStats()
	if st.EnrichmentAborts != 1 || st.Commits != 1 {
		t.Errorf("txn stats = %+v", st)
	}
}

func TestRefreshRichnessFeedsFusion(t *testing.T) {
	db := openLifeSci(t)
	all := db.RefreshRichness()
	if len(all) < 3 {
		t.Fatalf("richness sources = %d", len(all))
	}
	for _, m := range all {
		if db.Worlds().Richness(m.Source) != m.Score {
			t.Errorf("richness for %s not propagated", m.Source)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := openLifeSci(t)
	st := db.Stats()
	if st.Tables < 3 || st.Entities == 0 || st.Edges == 0 || st.Concepts == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Witnesses == 0 {
		t.Error("Aminopterin's existential witness should be counted")
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(lifesciOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without seeding an ontology: it must come from the catalog.
	opts := lifesciOptions(dir)
	opts.Ontology = nil
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Ontology().Subsumes("Chemical", "Drug") {
		t.Error("ontology not recovered from catalog")
	}
	res, _, err := db2.Query("SELECT COUNT(*) AS n FROM drugbank")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 5 {
		t.Errorf("recovered drugbank rows = %d", n)
	}
	// The catalog's own tables are queryable (meta-data is data).
	res, _, err = db2.Query("SELECT COUNT(*) AS n FROM _catalog_tables")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n == 0 {
		t.Error("catalog rows must be queryable")
	}
}

func TestRelationLayerRebuiltOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(lifesciOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	warfarin, _ := db.LookupEntity("drugbank", "DB00682")
	db.AddClaim(fusion.Claim{Source: "trials-us", Entity: warfarin.ID, Attr: "dose", Value: model.Float(5.1), Context: []string{"White"}})
	before := db.Stats()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	opts := lifesciOptions(dir)
	opts.Ontology = nil // ontology must come back from the catalog too
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	after := db2.Stats()
	if after.Entities != before.Entities || after.Edges < before.Edges {
		t.Errorf("graph not rebuilt: before %+v after %+v", before, after)
	}
	if after.Merges == 0 {
		t.Error("ER merges not re-derived")
	}
	if after.Witnesses != before.Witnesses {
		t.Errorf("witnesses: before %d after %d", before.Witnesses, after.Witnesses)
	}
	// The Figure-2 reachability works without any re-ingest.
	res, _, err := db2.Query(`SELECT name FROM Drug AS d WHERE REACHES(d._id, 'Osteosarcoma', 3) ORDER BY name WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Errorf("reachability after rebuild = %v", res.Rows)
	}
	// The claim survived, attached to the rebuilt entity.
	w2, ok := db2.LookupEntity("drugbank", "DB00682")
	if !ok {
		t.Fatal("warfarin missing after rebuild")
	}
	claims := db2.Worlds().ClaimsAbout(w2.ID, "dose")
	if len(claims) != 1 || claims[0].Source != "trials-us" {
		t.Errorf("claims after rebuild = %v", claims)
	}
	if len(claims) == 1 {
		if f, _ := claims[0].Value.AsFloat(); f != 5.1 {
			t.Errorf("claim value = %v", claims[0].Value)
		}
		if len(claims[0].Context) != 1 || claims[0].Context[0] != "White" {
			t.Errorf("claim context = %v", claims[0].Context)
		}
	}
	// Incremental ingestion continues cleanly after a rebuild.
	if err := db2.Ingest(datagen.Dataset{
		Source: "drugbank",
		Entities: []datagen.EntitySpec{{
			Key: "DBPOST", Types: []string{"Drug"},
			Attrs: model.Record{"name": model.String("Postrestart compound")},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if db2.Stats().Entities != after.Entities+1 {
		t.Error("post-rebuild ingest broken")
	}
}

func TestCSRSnapshotCacheAndEquivalence(t *testing.T) {
	db, err := Open(lifesciOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, ds := range datagen.LifeSci(4, 80, 60, 30) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	// Above the size threshold a snapshot is produced and cached.
	c1 := db.csrSnapshot()
	if c1 == nil {
		t.Fatal("no CSR snapshot for a large graph")
	}
	if c2 := db.csrSnapshot(); c2 != c1 {
		t.Error("snapshot must be cached while the graph is unchanged")
	}
	// CSR-backed REACHES answers exactly like the map traversal.
	const q = `SELECT name FROM Drug AS d WHERE REACHES(d._id, 'Osteosarcoma', 3) ORDER BY name WITH SEMANTICS`
	res, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var direct int
	target := db.lookupByText("Osteosarcoma")
	for _, id := range db.reasoner.Instances("Drug") {
		if db.graph.Reaches(id, target, 3, "") {
			direct++
		}
	}
	if len(res.Rows) != direct {
		t.Errorf("CSR path answered %d rows, map traversal %d", len(res.Rows), direct)
	}
	// Mutation invalidates the snapshot.
	if err := db.Ingest(datagen.Dataset{Source: "late", Entities: []datagen.EntitySpec{{
		Key: "k", Types: []string{"Drug"}, Attrs: model.Record{"name": model.String("Fresh compound")},
	}}}); err != nil {
		t.Fatal(err)
	}
	if c3 := db.csrSnapshot(); c3 == c1 {
		t.Error("snapshot must rebuild after graph mutation")
	}
	// Tiny graphs skip the snapshot.
	small, _ := Open(lifesciOptions(""))
	defer small.Close()
	if small.csrSnapshot() != nil {
		t.Error("tiny graph must not pay for a snapshot")
	}
}

func TestQueryErrors(t *testing.T) {
	db := openLifeSci(t)
	if _, _, err := db.Query("SELECT FROM"); err == nil {
		t.Error("parse error must surface")
	}
	if _, _, err := db.Query("SELECT * FROM no_such_source"); err == nil {
		t.Error("unknown source must surface")
	}
	if _, err := db.Explain("SELECT nope FROM"); err == nil {
		t.Error("explain of invalid query must fail")
	}
}

func TestIsALinkedTypesPredicates(t *testing.T) {
	db := openLifeSci(t)
	// ISA over the concept extent: asserted vs inferred membership.
	res, _, err := db.Query(`SELECT _key FROM Drug AS d WHERE ISA(d._id, 'Chemical')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("asserted Chemical drugs = %v (none asserts Chemical directly)", res.Rows)
	}
	res, _, err = db.Query(`SELECT _key FROM Drug AS d WHERE ISA(d._id, 'Chemical') WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("inferred Chemical drugs = %d", len(res.Rows))
	}

	// LINKED between two concept extents: drug —targets→ gene.
	res, _, err = db.Query(`SELECT d._key, g._key FROM Drug AS d JOIN Gene AS g ON LINKED(d._id, g._id, 'targets') WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Errorf("LINKED pairs = %v", res.Rows)
	}
	// Directionality: genes never target drugs.
	res, _, err = db.Query(`SELECT g._key FROM Gene AS g JOIN Drug AS d ON LINKED(g._id, d._id, 'targets') WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("reverse LINKED = %v", res.Rows)
	}

	// TYPES returns the membership list; LENGTH works over lists.
	res, _, err = db.Query(`SELECT LENGTH(TYPES(d._id)) AS n FROM Drug AS d WHERE d._key = 'DB00682' WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n < 2 {
		t.Errorf("Warfarin type count = %d (Approved Drugs + Drug + Chemical expected)", n)
	}
	// Non-ref arguments degrade to Unknown, not errors.
	res, _, err = db.Query(`SELECT name FROM drugbank WHERE ISA(name, 'Drug')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("ISA over a string = %v rows", len(res.Rows))
	}
}

func TestPredictFunctionInEngine(t *testing.T) {
	db, err := Open(lifesciOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, ds := range datagen.LifeSci(2, 60, 40, 20) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	// An untyped arrival: curation has no asserted types for it, but the
	// statistical layer can guess from its attributes.
	if err := db.Ingest(datagen.Dataset{Source: "feed", Entities: []datagen.EntitySpec{{
		Key:   "mystery",
		Attrs: model.Record{"name": model.String("compound 9999")},
	}}}); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Query(`SELECT PREDICT(f._id) AS guess FROM Drug AS f WHERE f._key = 'DB00682' WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Drug")) {
		t.Errorf("PREDICT over Warfarin = %v", res.Rows)
	}
	// Model is cached per graph version.
	tp1 := db.typePredictor()
	if tp1 == nil {
		t.Fatal("no type model despite typed entities")
	}
	if db.typePredictor() != tp1 {
		t.Error("model must be cached while the graph is unchanged")
	}
	db.Ingest(datagen.Dataset{Source: "feed", Entities: []datagen.EntitySpec{{
		Key: "another", Attrs: model.Record{"name": model.String("thing")},
	}}})
	if db.typePredictor() == tp1 {
		t.Error("model must retrain after graph mutation")
	}
	// Engine with no typed entities has no model; PREDICT yields null.
	empty, _ := Open(Options{Ontology: datagen.LifeSciOntology()})
	defer empty.Close()
	if empty.typePredictor() != nil {
		t.Error("untrained engine must have no model")
	}
}

func TestAccessorsAndTableRecords(t *testing.T) {
	db := openLifeSci(t)
	if db.Graph() == nil || db.Reasoner() == nil || db.Catalog() == nil ||
		db.Store() == nil || db.Refiner() == nil || db.Pipeline() == nil {
		t.Fatal("nil layer accessor")
	}
	recs, ok := db.TableRecords("drugbank")
	if !ok || len(recs) != 5 {
		t.Errorf("TableRecords = %d %v", len(recs), ok)
	}
	if _, ok := db.TableRecords("nope"); ok {
		t.Error("unknown table must report !ok")
	}
	if removed := db.Vacuum(); removed != 0 {
		t.Errorf("fresh engine vacuum removed %d", removed)
	}
}

func TestLookupEntityByName(t *testing.T) {
	db := openLifeSci(t)
	e, ok := db.LookupEntity("", "warfarin") // case-insensitive text match
	if !ok {
		t.Fatal("lookup by name failed")
	}
	if n, _ := e.Attrs.Get("name").AsString(); n != "Warfarin" {
		t.Errorf("looked up %v", e)
	}
	if _, ok := db.LookupEntity("", "definitely-not-present"); ok {
		t.Error("unknown name must not resolve")
	}
}
