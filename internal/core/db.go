// Package core assembles the self-curating database: the storage engine
// (instance layer), entity graph (relation layer), ontology and reasoner
// (semantic layer), the curation pipeline that keeps them enriched, the
// SCQL query engine with semantic optimization, parallel-world claim
// fusion, context-aware refinement, transactions, and the materialization
// cache. This is the system Figure 1 of the paper sketches, as one engine.
package core

import (
	"context"
	"fmt"
	"sync"

	"scdb/internal/catalog"
	"scdb/internal/cluster"
	"scdb/internal/curate"
	"scdb/internal/datagen"
	"scdb/internal/er"
	"scdb/internal/extract"
	"scdb/internal/fusion"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/obs"
	"scdb/internal/ontology"
	"scdb/internal/reason"
	"scdb/internal/refine"
	"scdb/internal/richness"
	"scdb/internal/semantic"
	"scdb/internal/storage"
	"scdb/internal/txn"
)

// ClaimsTable is the virtual table exposing the parallel-world claim base
// to SCQL (FROM claims ... UNDER CERTAIN / UNDER FUZZY(t)).
const ClaimsTable = "claims"

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// Ontology seeds the semantic layer (nil starts empty; axioms may
	// also be loaded from the catalog or added later).
	Ontology *ontology.Ontology
	// LinkRules drive online literal-to-entity link discovery.
	LinkRules []curate.LinkRule
	// Patterns drive information extraction over unstructured text.
	Patterns []extract.Pattern
	// ERConfig tunes incremental entity resolution.
	ERConfig er.Config
	// MatCacheSize bounds the materialization cache (0 = default 256).
	MatCacheSize int
	// MatPolicy selects its retention policy (default PolicyRanked).
	MatPolicy curate.MatPolicy
	// DisableSemanticOpt turns the OS.3 rewrites off (ablation).
	DisableSemanticOpt bool
	// DisableMatCache turns materialization off (ablation).
	DisableMatCache bool
	// Parallelism sizes the morsel-driven executor's worker pool. <=0 means
	// one worker per CPU; 1 executes every operator inline. Results are
	// identical for every setting.
	Parallelism int
	// MorselSize overrides the executor's rows-per-morsel granule (<=0 =
	// the query package default of 1024). Mostly a testing knob.
	MorselSize int
	// DisableAccessPaths keeps the planner from fusing Filter-over-Scan
	// into IndexScan (no index use, no zone pruning — ablation baseline).
	DisableAccessPaths bool
	// DisableZonePruning executes IndexScans without skipping refuted zone
	// segments (differential baseline; plans are unchanged).
	DisableZonePruning bool
	// DisableIndexScan executes IndexScans as plain zone scans and stops
	// index self-creation (differential baseline; plans are unchanged).
	DisableIndexScan bool
	// DisablePlanCache re-plans every statement (ablation).
	DisablePlanCache bool
	// PlanCacheSize bounds the plan cache (0 = default 256).
	PlanCacheSize int
	// Sync selects the storage commit durability policy (default
	// storage.SyncNone: buffered log writes, flushed on checkpoint/close).
	Sync storage.SyncPolicy
	// IngestBatchSize is records per storage write batch during ingest
	// (0 = curate.DefaultIngestBatch; 1 = per-record writes, the serial
	// baseline). Final state is identical for every setting.
	IngestBatchSize int
	// IngestParallelism sizes the ingest decode worker pool (0 = one per
	// CPU; 1 decodes inline). Final state is identical for every setting.
	IngestParallelism int
	// WALSegmentBytes is the WAL segment rotation threshold (0 =
	// storage.DefaultSegmentBytes).
	WALSegmentBytes int64
	// CheckpointBytes triggers an automatic incremental checkpoint after
	// that many WAL bytes since the last one (0 =
	// storage.DefaultCheckpointBytes, negative disables automatic
	// checkpoints).
	CheckpointBytes int64
	// RecoverParallelism sizes recovery's worker pools (0 = one per CPU,
	// 1 = serial). Recovered state is identical for every setting.
	RecoverParallelism int
	// ReadOnly opens the engine as a read replica: ingest and claim
	// persistence return ErrReadOnly, the catalog is opened without
	// creating its system tables, and Close skips the catalog/ontology
	// flush — the store's content (and its commit clock) belong to the
	// primary and arrive only through replication apply.
	ReadOnly bool
}

// DB is the self-curating database engine.
//
// Lock order: ingestMu → pipeline.mu → db.mu. Nothing acquires pipeline.mu
// while holding db.mu (Stats reads the pipeline counters before taking
// db.mu), so curation can run outside the engine lock without deadlocking
// against readers.
type DB struct {
	mu sync.RWMutex

	// ingestMu serializes Ingest against itself and Close, without
	// blocking queries: the curation pipeline's heavy phases run under it
	// (and the pipeline's own mutex), not under db.mu.
	ingestMu sync.Mutex
	closed   bool // under ingestMu+mu; Close is idempotent

	store    *storage.Store
	cat      *catalog.Catalog
	graph    *graph.Graph
	onto     *ontology.Ontology
	reasoner *reason.Reasoner
	pipeline *curate.Pipeline
	worlds   *fusion.Worlds
	refiner  *refine.Refiner
	txns     *txn.Manager
	matCache *curate.MatCache
	plans    *planCache
	tracker  *cluster.Tracker
	opts     Options

	// csrMu guards the cached traversal snapshot (OS.2): rebuilt lazily
	// whenever the graph version moves.
	csrMu  sync.Mutex
	csr    *graph.CSR
	csrVer uint64

	// tpMu guards the cached type-prediction model (FS.4/FS.5's PREDICT
	// function), retrained lazily when the graph version moves.
	tpMu  sync.Mutex
	tp    *semantic.TypePredictor
	tpVer uint64
}

// Open assembles the engine.
func Open(opts Options) (*DB, error) {
	store, err := storage.OpenOptions(opts.Dir, storage.Options{
		Sync:               opts.Sync,
		SegmentBytes:       opts.WALSegmentBytes,
		CheckpointBytes:    opts.CheckpointBytes,
		RecoverParallelism: opts.RecoverParallelism,
	})
	if err != nil {
		return nil, err
	}
	var cat *catalog.Catalog
	if opts.ReadOnly {
		cat, err = catalog.OpenReadOnly(store)
	} else {
		cat, err = catalog.Open(store)
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	onto := opts.Ontology
	if onto == nil {
		if onto, err = cat.LoadOntology(); err != nil {
			store.Close()
			return nil, err
		}
	}
	g := graph.New()
	reasoner := reason.New(g, onto)
	pipe, err := curate.NewPipeline(curate.Config{
		Store:     store,
		Catalog:   cat,
		Graph:     g,
		Ontology:  onto,
		Reasoner:  reasoner,
		LinkRules: opts.LinkRules,
		Patterns:  opts.Patterns,
		ERConfig:  opts.ERConfig,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	// Re-derive the relation and semantic layers from the instance layer
	// (no-op on a fresh store).
	if err := pipe.RebuildFromStore(); err != nil {
		store.Close()
		return nil, err
	}
	worlds := fusion.New(onto)
	db := &DB{
		store:    store,
		cat:      cat,
		graph:    g,
		onto:     onto,
		reasoner: reasoner,
		pipeline: pipe,
		worlds:   worlds,
		refiner:  refine.New(onto, g, worlds),
		matCache: curate.NewMatCache(opts.MatCacheSize, opts.MatPolicy),
		plans:    newPlanCache(opts.PlanCacheSize),
		tracker:  cluster.NewTracker(),
		opts:     opts,
	}
	db.txns = txn.NewManager(store, db.enrichmentVersion)
	if err := db.loadClaims(); err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// claimsTable persists the parallel-world claim base. Entities are
// referenced by (source, key), which survives merges.
const claimsTable = "_claims"

func (db *DB) loadClaims() error {
	loadClaimsInto(db.store, db.graph, db.worlds)
	return nil
}

// loadClaimsInto restores the persisted claim base into a claim store,
// resolving entity references against the given graph. Shared by Open and
// RefreshDerived (which rebuilds graph and worlds from scratch).
func loadClaimsInto(store *storage.Store, g *graph.Graph, worlds *fusion.Worlds) {
	tb, ok := store.Table(claimsTable)
	if !ok {
		return
	}
	tb.Scan(func(_ storage.RowID, rec model.Record) bool {
		src, _ := rec.Get("claim_source").AsString()
		eSrc, _ := rec.Get("entity_source").AsString()
		eKey, _ := rec.Get("entity_key").AsString()
		attr, _ := rec.Get("attr").AsString()
		conf, _ := rec.Get("conf").AsFloat()
		var ctx []string
		if l, ok := rec.Get("context").AsList(); ok {
			for _, v := range l {
				if s, ok := v.AsString(); ok {
					ctx = append(ctx, s)
				}
			}
		}
		e, ok := g.FindByKey(eSrc, eKey)
		if !ok {
			return true // entity gone; drop the claim
		}
		worlds.AddClaim(fusion.Claim{
			Source: src, Entity: e.ID, Attr: attr,
			Value: rec.Get("value"), Context: ctx, Confidence: model.Fuzzy(conf),
		})
		return true
	})
}

// persistClaim appends the claim to the claims table.
func (db *DB) persistClaim(c fusion.Claim) error {
	e, ok := db.graph.Entity(c.Entity)
	if !ok {
		return fmt.Errorf("core: claim about unknown entity %d", c.Entity)
	}
	tb, err := db.store.EnsureTable(claimsTable)
	if err != nil {
		return err
	}
	ctx := make([]model.Value, len(c.Context))
	for i, s := range c.Context {
		ctx[i] = model.String(s)
	}
	conf := c.Confidence
	if conf == 0 {
		conf = 1
	}
	_, err = tb.Insert(model.Record{
		"claim_source":  model.String(c.Source),
		"entity_source": model.String(e.Source),
		"entity_key":    model.String(e.Key),
		"attr":          model.String(c.Attr),
		"value":         c.Value,
		"context":       model.List(ctx...),
		"conf":          model.Float(float64(conf)),
	})
	return err
}

// Close persists the catalog and ontology, then closes the store. It
// waits out an in-flight Ingest (ingestMu) so curation never writes to a
// closed log.
func (db *DB) Close() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if !db.opts.ReadOnly {
		if err := db.cat.Flush(); err != nil {
			db.store.Close()
			return err
		}
		if err := db.cat.SaveOntology(db.onto); err != nil {
			db.store.Close()
			return err
		}
	}
	if err := db.store.Sync(); err != nil {
		db.store.Close()
		return err
	}
	return db.store.Close()
}

// csrSnapshot returns a CSR snapshot of the current graph, rebuilding it
// in BFS order when the graph changed since the last build. Returns nil
// for tiny graphs where the build cost outweighs the traversal win.
func (db *DB) csrSnapshot() *graph.CSR {
	const minEntities = 32
	if db.graph.NumEntities() < minEntities {
		return nil
	}
	ver := db.graph.Version()
	db.csrMu.Lock()
	defer db.csrMu.Unlock()
	if db.csr == nil || db.csrVer != ver {
		db.csr = db.graph.BuildCSR(graph.OrderBFS)
		db.csrVer = ver
	}
	return db.csr
}

// typePredictor returns the cached naive-Bayes type model, retraining it
// from the typed entities when the graph changed. Returns nil when the
// graph holds no typed entities to learn from.
func (db *DB) typePredictor() *semantic.TypePredictor {
	ver := db.graph.Version()
	db.tpMu.Lock()
	defer db.tpMu.Unlock()
	if db.tp == nil || db.tpVer != ver {
		tp := semantic.NewTypePredictor()
		trained := tp.TrainGraph(db.graph, func(id model.EntityID) []string {
			e, ok := db.graph.Entity(id)
			if !ok || len(e.Types) == 0 {
				return nil
			}
			return e.Types[:1]
		})
		if trained == 0 {
			db.tp = nil
		} else {
			db.tp = tp
		}
		db.tpVer = ver
	}
	return db.tp
}

// enrichmentVersion is the combined clock of the relation and semantic
// layers, watched by transaction validation (FS.11). The layer pointers
// are read under db.mu because RefreshDerived swaps them wholesale; the
// transaction manager calls this outside any engine lock.
func (db *DB) enrichmentVersion() uint64 {
	db.mu.RLock()
	g, o := db.graph, db.onto
	db.mu.RUnlock()
	return g.Version() + o.Version()
}

// Ingest runs a source delivery through the curation pipeline. The heavy
// phases — decode, batched instance writes, ER, link discovery,
// extraction, re-inference — run OUTSIDE db.mu: the pipeline serializes
// itself, and every structure it feeds (store, catalog, graph, ontology,
// reasoner) carries its own latch, so queries keep executing against
// consistent, progressively enriched state while a delivery lands (FS.11's
// continuous curation). db.mu is taken only for the final install step:
// invalidating the materialization cache, which also waits out in-flight
// readers so no stale result survives the enrichment.
func (db *DB) Ingest(ds datagen.Dataset) error {
	return db.IngestCtx(context.Background(), ds)
}

// IngestCtx is Ingest with an observability scope: when ctx carries an
// obs trace (a TRACE-style ingest request, or the debug tooling), the
// curation pipeline attaches per-stage spans — decode fan-out, batch
// install with WAL fsync wait, relation/ER, integration, inference — to
// it. Cancellation is not yet observed mid-pass; a delivery is atomic
// with respect to the curation state.
func (db *DB) IngestCtx(ctx context.Context, ds datagen.Dataset) error {
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if err := db.pipeline.IngestDatasetOpts(ds, curate.IngestOptions{
		BatchSize:   db.opts.IngestBatchSize,
		Parallelism: db.opts.IngestParallelism,
		Trace:       obs.FromContext(ctx),
	}); err != nil {
		return err
	}
	db.mu.Lock()
	db.matCache.InvalidateAll()
	db.mu.Unlock()
	return nil
}

// AddClaim records a parallel-world claim (one source's context-scoped
// statement about an entity attribute) and persists it.
func (db *DB) AddClaim(c fusion.Claim) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.worlds.AddClaim(c)
	// Persistence is best-effort bookkeeping: an unknown entity (claims
	// created directly against synthetic IDs in tests) stays in-memory.
	// Replicas never persist — their claim rows arrive from the primary.
	if !db.opts.ReadOnly {
		_ = db.persistClaim(c)
	}
	db.matCache.InvalidateAll()
}

// RefreshRichness measures every source's richness (FS.2) and feeds the
// scores into claim fusion as source weights.
func (db *DB) RefreshRichness() []richness.Metrics {
	db.mu.Lock()
	defer db.mu.Unlock()
	all := richness.MeasureAll(db.graph)
	for _, m := range all {
		db.worlds.SetRichness(m.Source, m.Score)
	}
	return all
}

// Graph exposes the relation layer (read-mostly analytical use).
func (db *DB) Graph() *graph.Graph { return db.graph }

// Ontology exposes the semantic layer's TBox/RBox.
func (db *DB) Ontology() *ontology.Ontology { return db.onto }

// Reasoner exposes the ABox reasoner.
func (db *DB) Reasoner() *reason.Reasoner { return db.reasoner }

// Catalog exposes the unified meta-data.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Store exposes the instance layer.
func (db *DB) Store() *storage.Store { return db.store }

// Worlds exposes the parallel-world claim base.
func (db *DB) Worlds() *fusion.Worlds { return db.worlds }

// Refiner exposes the context-aware refinement engine.
func (db *DB) Refiner() *refine.Refiner { return db.refiner }

// Pipeline exposes curation statistics.
func (db *DB) Pipeline() *curate.Pipeline { return db.pipeline }

// ERDigests exports the resolver's cross-shard ER evidence past the given
// watermarks — the shard-side half of the router's digest exchange.
func (db *DB) ERDigests(entsSince, matchesSince int) er.DigestBatch {
	return db.pipeline.ERDigests(entsSince, matchesSince)
}

// Begin starts a transaction (FS.11).
func (db *DB) Begin(level txn.Level) *txn.Txn { return db.txns.Begin(level) }

// TxnStats returns transaction outcome counters.
func (db *DB) TxnStats() txn.Stats { return db.txns.Stats() }

// Vacuum reclaims record versions below the oldest live transaction's
// snapshot and returns how many were removed.
//
// Vacuum deliberately takes no db.mu. It is safe without it: the horizon
// is the oldest snapshot any live transaction can read at, so every
// version Table.Vacuum drops is invisible to all current and future
// readers by CSN arithmetic, and the per-table latch covers the chain
// compaction plus the zone-map/index rebuild against concurrent scans and
// writes. Holding db.mu here would stall queries and ingest for the whole
// sweep; instead vacuum interleaves with both (pinned by
// TestConcurrentIngestQueryVacuum under -race).
func (db *DB) Vacuum() int {
	horizon := db.txns.OldestSnapshot()
	removed := 0
	for _, name := range db.store.Tables() {
		if t, ok := db.store.Table(name); ok {
			removed += t.Vacuum(horizon)
		}
	}
	return removed
}

// IndexStats lists the self-curated (and pinned) secondary indexes across
// every table, sorted by (table, attribute).
func (db *DB) IndexStats() []storage.IndexStat {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.IndexStats()
}

// PlanCacheStats reports plan-cache hits, misses, and resident entries.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.stats() }

// WALStats reports the durable store's write-ahead-log counters (zero for
// in-memory databases).
func (db *DB) WALStats() storage.WALStats { return db.store.WALStats() }

// TableRecords materializes every live record of a table (for QBE and
// export paths; queries should use SCQL).
func (db *DB) TableRecords(name string) ([]model.Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.store.Table(name)
	if !ok {
		return nil, false
	}
	var recs []model.Record
	t.Scan(func(_ storage.RowID, rec model.Record) bool {
		recs = append(recs, rec)
		return true
	})
	return recs, true
}

// LookupEntity finds an entity by source-local key, or by any indexed
// string attribute value when source is empty.
func (db *DB) LookupEntity(source, key string) (*model.Entity, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if source != "" {
		return db.graph.FindByKey(source, key)
	}
	id := db.lookupByText(key)
	if id == model.NoEntity {
		return nil, false
	}
	return db.graph.Entity(id)
}

// lookupByText grounds a name to an entity via the graph (linear scan over
// string attributes; the pipeline's index is not exposed, and lookups by
// name are interactive-path only).
func (db *DB) lookupByText(text string) model.EntityID {
	norm := er.Normalize(text)
	best := model.NoEntity
	db.graph.ForEachEntity(func(e *model.Entity) bool {
		for _, k := range e.Attrs.Keys() {
			if s, ok := e.Attrs[k].AsString(); ok && er.Normalize(s) == norm {
				if best == model.NoEntity || e.ID < best {
					best = e.ID
				}
			}
		}
		return true
	})
	return best
}

// JustifiedAnswer runs the paper's context-aware loop for "is target an
// effective value of attr for the named entity?" — naive certain answer,
// automatic refinements, and the justified parallel-world answer.
func (db *DB) JustifiedAnswer(entityName, attr string, target, tol float64) (refine.ContextAnswer, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id := db.lookupByText(entityName)
	if id == model.NoEntity {
		// Claims may reference entities that only exist in the claim base.
		if len(db.worlds.ClaimsAbout(0, attr)) == 0 {
			return refine.ContextAnswer{}, fmt.Errorf("core: unknown entity %q", entityName)
		}
		id = 0
	}
	return db.refiner.AnswerWithRefinement(id, attr, target, tol), nil
}

// Stats summarizes the engine.
type Stats struct {
	Tables          int
	Entities        int
	Edges           int
	Concepts        int
	InferredTypes   int
	Witnesses       int
	Inconsistencies int
	Merges          int
	Claims          int
	CacheHitRate    float64
	// ER reports the resolver's work counters (curation cost visibility).
	ER er.Stats
}

// Stats returns a snapshot. The pipeline counters are read before db.mu
// (never under it — see the lock order on DB); the pipeline pointer itself
// is fetched under db.mu because RefreshDerived swaps it.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	pipe := db.pipeline
	db.mu.RUnlock()
	ps := pipe.Stats()
	db.mu.RLock()
	defer db.mu.RUnlock()
	rs := db.reasoner.Stats()
	claims := 0
	for _, c := range db.worlds.Conflicts() {
		claims += len(c.Claims)
	}
	return Stats{
		Tables:          len(db.store.Tables()),
		Entities:        db.graph.NumEntities(),
		Edges:           db.graph.NumEdges(),
		Concepts:        len(db.onto.Concepts()),
		InferredTypes:   rs.InferredTypes,
		Witnesses:       rs.Witnesses,
		Inconsistencies: rs.Inconsistencies,
		Merges:          ps.Merges,
		Claims:          claims,
		CacheHitRate:    db.matCache.Stats().HitRate(),
		ER:              ps.ER,
	}
}
