package core

import (
	"strings"
	"sync"
	"testing"

	"scdb/internal/datagen"
	"scdb/internal/model"
	"scdb/internal/query"
)

// openLifeSciOpts is openLifeSci with executor knobs.
func openLifeSciOpts(t *testing.T, parallelism, morselSize int) *DB {
	t.Helper()
	opts := lifesciOptions("")
	opts.Parallelism = parallelism
	opts.MorselSize = morselSize
	opts.DisableMatCache = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func renderRows(res *query.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	b.WriteString("\n")
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString("|")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// engineCorpus covers every layer the engine's queryEnv serves: storage
// tables, the claims virtual table under each answer mode, concept scans
// with and without inference, and the graph/semantic predicates.
var engineCorpus = []string{
	"SELECT * FROM drugbank ORDER BY name",
	"SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name",
	"SELECT d.name, c.disease_name FROM drugbank AS d JOIN ctd AS c ON d.name = c.chemical_name ORDER BY d.name, c.disease_name",
	"SELECT COUNT(*) AS n FROM uniprot",
	"SELECT symbol, COUNT(*) AS n FROM uniprot GROUP BY symbol ORDER BY n DESC, symbol LIMIT 5",
	"SELECT DISTINCT disease_name FROM ctd WHERE disease_name IS NOT NULL ORDER BY disease_name",
	"SELECT _key FROM Chemical ORDER BY _key WITH SEMANTICS",
	"SELECT _key FROM Drug ORDER BY _key LIMIT 4",
	"SELECT name FROM drugbank WHERE ISA(_id, 'Chemical') ORDER BY name WITH SEMANTICS",
	"SELECT name FROM drugbank WHERE REACHES(_id, 'Osteosarcoma', 3) ORDER BY name",
	"SELECT attr, COUNT(*) AS n FROM claims GROUP BY attr ORDER BY attr",
	"SELECT attr FROM claims ORDER BY attr LIMIT 5 UNDER CERTAIN",
	"SELECT attr, justification FROM claims ORDER BY attr LIMIT 5 UNDER FUZZY(0.5)",
	"SELECT name FROM drugbank ORDER BY name LIMIT 2",
	"SELECT COUNT(*) AS n FROM drugbank WHERE name IS NOT NULL",
}

// TestEngineParallelDifferential: the full engine must answer the corpus
// byte-identically at Parallelism 1 and at a parallel setting with a tiny
// morsel size (forcing multi-morsel streams through every operator).
func TestEngineParallelDifferential(t *testing.T) {
	serial := openLifeSciOpts(t, 1, 3)
	parallel := openLifeSciOpts(t, 8, 3)
	for _, src := range engineCorpus {
		want, _, err := serial.Query(src)
		if err != nil {
			t.Fatalf("serial %q: %v", src, err)
		}
		got, _, err := parallel.Query(src)
		if err != nil {
			t.Fatalf("parallel %q: %v", src, err)
		}
		if renderRows(got) != renderRows(want) {
			t.Errorf("%q diverged:\nserial:\n%s\nparallel:\n%s",
				src, renderRows(want), renderRows(got))
		}
	}
}

// TestLookupNameMemoConcurrency: REACHES resolves its target through the
// per-statement name memo; with workers evaluating predicates concurrently
// the memo must be safe. Run under -race to catch regressions.
func TestLookupNameMemoConcurrency(t *testing.T) {
	db := openLifeSciOpts(t, 4, 2)
	const q = "SELECT name FROM drugbank WHERE REACHES(_id, 'Osteosarcoma', 3) OR REACHES(_id, 'Inflammation', 2) ORDER BY name"
	want, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := db.Query(q)
			if err != nil {
				errs <- err
				return
			}
			if renderRows(res) != renderRows(want) {
				errs <- &queryMismatch{}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type queryMismatch struct{}

func (*queryMismatch) Error() string { return "concurrent query diverged from sequential result" }

// TestExplainStatement: EXPLAIN returns the optimized plan as rows without
// executing, and never touches the materialization cache.
func TestExplainStatement(t *testing.T) {
	db := openLifeSci(t)
	res, info, err := db.Query("EXPLAIN SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Errorf("columns = %v", res.Columns)
	}
	text := renderRows(res)
	for _, want := range []string{"Project name", "TopK 2 BY name", "Filter", "Scan drugbank"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	if info.OperatorStats != nil {
		t.Error("plain EXPLAIN must not execute")
	}
	// EXPLAIN must not populate or hit the cache.
	_, info, err = db.Query("EXPLAIN SELECT name FROM drugbank WHERE name LIKE 'W%' ORDER BY name LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheHit {
		t.Error("EXPLAIN must bypass the materialization cache")
	}
}

// TestExplainAnalyzeStatement: EXPLAIN ANALYZE executes and reports actual
// per-operator cardinalities.
func TestExplainAnalyzeStatement(t *testing.T) {
	db := openLifeSci(t)
	res, info, err := db.Query("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM drugbank")
	if err != nil {
		t.Fatal(err)
	}
	text := renderRows(res)
	for _, want := range []string{"Aggregate", "Scan drugbank", "in=", "out=1", "morsels=", "time="} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	if info.OperatorStats == nil {
		t.Fatal("EXPLAIN ANALYZE must attach operator stats")
	}
	if info.OperatorStats.RowsOut != 1 {
		t.Errorf("root RowsOut = %d, want 1", info.OperatorStats.RowsOut)
	}
}

// TestQueryInfoOperatorStats: ordinary executed queries also carry the
// profile, and EstimatedMorsels flows from the optimizer.
func TestQueryInfoOperatorStats(t *testing.T) {
	opts := lifesciOptions("")
	opts.DisableMatCache = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := db.Ingest(ds); err != nil {
			t.Fatal(err)
		}
	}
	res, info, err := db.Query("SELECT name FROM drugbank ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if info.OperatorStats == nil {
		t.Fatal("executed query must carry operator stats")
	}
	if info.OperatorStats.RowsOut != int64(len(res.Rows)) {
		t.Errorf("stats RowsOut = %d, rows = %d", info.OperatorStats.RowsOut, len(res.Rows))
	}
	if info.EstimatedMorsels <= 0 {
		t.Errorf("EstimatedMorsels = %d, want > 0", info.EstimatedMorsels)
	}
	ex, err := db.Explain("SELECT name FROM drugbank ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if ex.EstimatedMorsels <= 0 {
		t.Errorf("Explain EstimatedMorsels = %d, want > 0", ex.EstimatedMorsels)
	}
}

// TestTopKFusionInEngine: LIMIT over ORDER BY plans as TopK and matches the
// unfused semantics.
func TestTopKFusionInEngine(t *testing.T) {
	db := openLifeSci(t)
	info, err := db.Explain("SELECT name FROM drugbank ORDER BY name LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Plan, "TopK 3 BY name") {
		t.Errorf("plan not fused to TopK:\n%s", info.Plan)
	}
	res, _, err := db.Query("SELECT name FROM drugbank ORDER BY name LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := db.Query("SELECT name FROM drugbank ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := range res.Rows {
		if !model.Equal(res.Rows[i][0], all.Rows[i][0]) {
			t.Errorf("row %d: TopK %v != Sort %v", i, res.Rows[i][0], all.Rows[i][0])
		}
	}
}
