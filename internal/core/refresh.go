package core

// Read-replica support: the read-only gate and the derived-layer refresh.
//
// A replica's instance layer advances continuously as replicated WAL
// frames are applied directly to the store, below the engine. The relation
// and semantic layers (graph, ontology, reasoner, claim worlds) are
// derived state: they are rebuilt wholesale by RefreshDerived rather than
// maintained incrementally, because the curation pipeline's incremental
// paths assume they observed every record exactly once at ingest time.
// SELECT-style reads over the instance layer are therefore always fresh
// (MVCC at the applied watermark); entity/ontology-aware answers are as
// fresh as the last refresh.

import (
	"errors"

	"scdb/internal/catalog"
	"scdb/internal/curate"
	"scdb/internal/fusion"
	"scdb/internal/graph"
	"scdb/internal/reason"
	"scdb/internal/refine"
)

// ErrReadOnly rejects writes against a read replica; route them to the
// primary instead.
var ErrReadOnly = errors.New("core: read-only replica: writes must go to the primary")

// ReadOnly reports whether the engine was opened as a read replica.
func (db *DB) ReadOnly() bool { return db.opts.ReadOnly }

// InvalidateCaches drops the materialization cache. Replication apply
// mutates the instance layer beneath the curation pipeline, so the usual
// post-ingest invalidation never runs; the follower calls this after every
// applied batch to keep cached results from outliving the rows they
// summarize.
func (db *DB) InvalidateCaches() {
	db.mu.Lock()
	db.matCache.InvalidateAll()
	db.mu.Unlock()
}

// RefreshDerived rebuilds the relation and semantic layers from the
// instance layer and swaps them in atomically. The rebuild runs under
// ingestMu only — queries keep executing against the old layers — and the
// swap takes db.mu exclusively, which waits out in-flight readers (every
// query holds the read lock end to end), so no statement ever observes a
// half-swapped engine.
func (db *DB) RefreshDerived() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.RLock()
	closed := db.closed
	// Keep the live ontology rather than reloading the catalog's persisted
	// copy: axioms handed to Open (or AddAxioms) live only in memory, and a
	// reload would silently drop them. The live object already unions the
	// catalog copy loaded at open time with every axiom parsed since.
	onto := db.onto
	db.mu.RUnlock()
	if closed {
		return nil
	}
	var (
		cat *catalog.Catalog
		err error
	)
	if db.opts.ReadOnly {
		cat, err = catalog.OpenReadOnly(db.store)
	} else {
		cat, err = catalog.Open(db.store)
	}
	if err != nil {
		return err
	}
	if db.opts.Ontology != nil {
		onto = db.opts.Ontology
	}
	g := graph.New()
	reasoner := reason.New(g, onto)
	pipe, err := curate.NewPipeline(curate.Config{
		Store:     db.store,
		Catalog:   cat,
		Graph:     g,
		Ontology:  onto,
		Reasoner:  reasoner,
		LinkRules: db.opts.LinkRules,
		Patterns:  db.opts.Patterns,
		ERConfig:  db.opts.ERConfig,
	})
	if err != nil {
		return err
	}
	if err := pipe.RebuildFromStore(); err != nil {
		return err
	}
	worlds := fusion.New(onto)
	refiner := refine.New(onto, g, worlds)
	loadClaimsInto(db.store, g, worlds)

	db.mu.Lock()
	db.cat, db.onto, db.graph, db.reasoner = cat, onto, g, reasoner
	db.pipeline, db.worlds, db.refiner = pipe, worlds, refiner
	db.matCache.InvalidateAll()
	// The fresh ontology's version counter can collide with a stale plan
	// key's, so version keying alone cannot age those plans out.
	db.plans.clear()
	db.mu.Unlock()

	db.csrMu.Lock()
	db.csr, db.csrVer = nil, 0
	db.csrMu.Unlock()
	db.tpMu.Lock()
	db.tp, db.tpVer = nil, 0
	db.tpMu.Unlock()
	return nil
}
