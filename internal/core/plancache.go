package core

import (
	"sync"

	"scdb/internal/query"
)

// planCache memoizes the lex/parse/optimize pipeline for the SCQL hot
// path: point lookups issued by the curation pipeline, ER, and interactive
// demos repeat the same statement text against an unchanged catalog, and
// re-planning them dominated execution for indexed lookups. Entries are
// keyed by (statement text, schema version, ontology version), so any
// catalog or TBox change — new tables, new axioms — invalidates every
// stale plan without an invalidation protocol: the key simply never
// matches again, and stale entries age out of the bounded map.
//
// Cached plans and statements are immutable after optimization (the
// executor never mutates plan nodes), so one entry may serve concurrent
// queries. The cache is a plain mutex around a small map: get/put are a
// map probe plus a counter bump, cheap enough for the per-query path.
type planKey struct {
	src    string
	schema uint64 // storage.Store.SchemaVersion()
	onto   uint64 // ontology.Ontology.Version()
}

type planEntry struct {
	stmt     *query.SelectStmt
	plan     query.Node
	planText string
	rules    []string
	cost     float64
	morsels  int
	lastUsed uint64
}

type planCache struct {
	mu      sync.Mutex
	cap     int
	tick    uint64
	entries map[planKey]*planEntry
	hits    uint64
	misses  uint64
}

const defaultPlanCacheSize = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{cap: capacity, entries: make(map[planKey]*planEntry)}
}

func (c *planCache) get(k planKey) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.tick++
	e.lastUsed = c.tick
	c.hits++
	return e, true
}

func (c *planCache) put(k planKey, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; !exists && len(c.entries) >= c.cap {
		// Evict the least-recently-used entry; an O(cap) sweep is fine at
		// this size and keeps the structure a single flat map.
		var victim planKey
		var oldest uint64 = ^uint64(0)
		for key, ent := range c.entries {
			if ent.lastUsed < oldest {
				oldest, victim = ent.lastUsed, key
			}
		}
		delete(c.entries, victim)
	}
	c.tick++
	e.lastUsed = c.tick
	c.entries[k] = e
}

// clear drops every cached plan. Used when the derived layers are rebuilt
// wholesale (replication refresh): the fresh ontology carries a new version
// counter that could collide with a stale key's, so version keying alone
// cannot be trusted across a swap.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[planKey]*planEntry)
}

// PlanCacheStats reports plan-cache effectiveness.
type PlanCacheStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.entries)}
}
