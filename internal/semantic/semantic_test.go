package semantic

import (
	"fmt"
	"testing"

	"scdb/internal/graph"
	"scdb/internal/model"
)

func drug(g *graph.Graph, key, name string) model.EntityID {
	return g.AddEntity(&model.Entity{Key: key, Source: "s", Types: []string{"Drug"},
		Attrs: model.Record{"name": model.String(name), "dosage_mg": model.Float(5), "indication": model.String("pain relief therapy")}})
}

func gene(g *graph.Graph, key, sym string) model.EntityID {
	return g.AddEntity(&model.Entity{Key: key, Source: "s", Types: []string{"Gene"},
		Attrs: model.Record{"symbol": model.String(sym), "organism": model.String("homo sapiens"), "function": model.String("protein coding enzyme")}})
}

func assertedTypes(g *graph.Graph) func(model.EntityID) []string {
	return func(id model.EntityID) []string {
		e, ok := g.Entity(id)
		if !ok {
			return nil
		}
		return e.Types
	}
}

func TestTypePredictorLearnsDrugVsGene(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		drug(g, fmt.Sprintf("d%d", i), fmt.Sprintf("drugname%d", i))
		gene(g, fmt.Sprintf("g%d", i), fmt.Sprintf("SYM%d", i))
	}
	p := NewTypePredictor()
	if n := p.TrainGraph(g, assertedTypes(g)); n != 20 {
		t.Fatalf("trained on %d entities", n)
	}
	if got := p.Classes(); len(got) != 2 || got[0] != "Drug" || got[1] != "Gene" {
		t.Fatalf("Classes = %v", got)
	}
	// An unlabeled drug-like entity.
	unk := &model.Entity{Key: "u", Source: "x", Attrs: model.Record{
		"name": model.String("newdrug"), "dosage_mg": model.Float(10), "indication": model.String("pain therapy")}}
	preds := p.Predict(unk, 2)
	if len(preds) != 2 {
		t.Fatalf("preds = %v", preds)
	}
	if preds[0].Concept != "Drug" {
		t.Errorf("top prediction = %v, want Drug", preds[0])
	}
	if preds[0].Confidence <= preds[1].Confidence {
		t.Error("confidences must be ordered")
	}
	// A gene-like entity.
	unkG := &model.Entity{Key: "u2", Source: "x", Attrs: model.Record{
		"symbol": model.String("ABCD"), "organism": model.String("homo sapiens")}}
	if got := p.Predict(unkG, 1); got[0].Concept != "Gene" {
		t.Errorf("gene-like predicted %v", got)
	}
}

func TestTypePredictorEdgeCases(t *testing.T) {
	p := NewTypePredictor()
	e := &model.Entity{Attrs: model.Record{"a": model.String("x")}}
	if got := p.Predict(e, 3); got != nil {
		t.Error("untrained predictor must return nil")
	}
	p.Train(e, []string{"C"})
	if got := p.Predict(e, 0); got != nil {
		t.Error("topK=0 must return nil")
	}
	got := p.Predict(e, 5)
	if len(got) != 1 || got[0].Concept != "C" {
		t.Errorf("single-class prediction = %v", got)
	}
	if got[0].Confidence < 0.99 {
		t.Errorf("single class confidence = %v", got[0].Confidence)
	}
}

func TestPredictionConfidencesSumToOne(t *testing.T) {
	g := graph.New()
	drug(g, "d1", "aspirin")
	gene(g, "g1", "TP53")
	p := NewTypePredictor()
	p.TrainGraph(g, assertedTypes(g))
	e := &model.Entity{Attrs: model.Record{"name": model.String("something")}}
	preds := p.Predict(e, 10)
	sum := 0.0
	for _, pr := range preds {
		sum += float64(pr.Confidence)
		if pr.Confidence < 0 || pr.Confidence > 1 {
			t.Errorf("confidence out of range: %v", pr)
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("confidences sum to %v", sum)
	}
}

// linkFixture builds drugs targeting genes with one drug lacking its edge.
func linkFixture(t *testing.T) (*graph.Graph, model.EntityID, model.EntityID) {
	t.Helper()
	g := graph.New()
	var drugs, genes []model.EntityID
	for i := 0; i < 5; i++ {
		drugs = append(drugs, drug(g, fmt.Sprintf("d%d", i), fmt.Sprintf("drug%d", i)))
		genes = append(genes, gene(g, fmt.Sprintf("g%d", i), fmt.Sprintf("SYM%d", i)))
	}
	// All drugs except drugs[0] target genes[0] (a hub), plus their own gene.
	for i := 1; i < 5; i++ {
		g.AddEdge(graph.Edge{From: drugs[i], Predicate: "targets", To: model.Ref(genes[0]), Source: "s"})
		g.AddEdge(graph.Edge{From: drugs[i], Predicate: "targets", To: model.Ref(genes[i]), Source: "s"})
	}
	// drugs[0] shares context with the others through a disease edge.
	dis := g.AddEntity(&model.Entity{Key: "dis", Source: "s", Types: []string{"Disease"}, Attrs: model.Record{"name": model.String("arthritis")}})
	g.AddEdge(graph.Edge{From: drugs[0], Predicate: "treats", To: model.Ref(dis), Source: "s"})
	g.AddEdge(graph.Edge{From: genes[0], Predicate: "associatedWith", To: model.Ref(dis), Source: "s"})
	return g, drugs[0], genes[0]
}

func TestLinkPredictorSuggestsPatternAndNeighbors(t *testing.T) {
	g, d0, g0 := linkFixture(t)
	lp := NewLinkPredictor()
	if n := lp.Train(g, assertedTypes(g)); n == 0 {
		t.Fatal("no edges trained")
	}
	if lp.PatternSupport("Drug", "targets", "Gene") != 8 {
		t.Errorf("pattern support = %d, want 8", lp.PatternSupport("Drug", "targets", "Gene"))
	}
	sugg := lp.Suggest(g, d0, "targets", assertedTypes(g), 3)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	// The hub gene shares a neighbor (the disease) with d0, so it ranks first.
	if sugg[0].To != g0 {
		t.Errorf("top suggestion = %v, want hub gene %d", sugg[0], g0)
	}
	for _, s := range sugg {
		if s.Confidence <= 0 || s.Confidence > 0.95 {
			t.Errorf("confidence out of (0,0.95]: %v", s)
		}
		if s.From != d0 || s.Predicate != "targets" {
			t.Errorf("malformed suggestion: %+v", s)
		}
	}
}

func TestLinkPredictorExcludesExistingEdges(t *testing.T) {
	g, d0, g0 := linkFixture(t)
	lp := NewLinkPredictor()
	lp.Train(g, assertedTypes(g))
	// Once the edge exists it must no longer be suggested.
	g.AddEdge(graph.Edge{From: d0, Predicate: "targets", To: model.Ref(g0), Source: "s"})
	for _, s := range lp.Suggest(g, d0, "targets", assertedTypes(g), 10) {
		if s.To == g0 {
			t.Error("existing edge suggested")
		}
	}
}

func TestLinkPredictorUntrainedPredicate(t *testing.T) {
	g, d0, _ := linkFixture(t)
	lp := NewLinkPredictor()
	lp.Train(g, assertedTypes(g))
	if got := lp.Suggest(g, d0, "unknownPred", assertedTypes(g), 5); got != nil {
		t.Errorf("unknown predicate suggestions = %v", got)
	}
	if got := lp.Suggest(g, d0, "targets", assertedTypes(g), 0); got != nil {
		t.Error("topK=0 must return nil")
	}
}
