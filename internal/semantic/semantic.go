// Package semantic implements the statistical half of the semantic layer
// (paper FS.4): "the vertical data expansion be enriched by adding
// statistical models, such as those offered by machine learning,
// specifically to improve the linkage coverage and accuracy". Two models
// are provided:
//
//   - TypePredictor: a multinomial naive-Bayes classifier over attribute
//     tokens that predicts concept membership for entities whose types are
//     unknown — extending what TBox-only inference (subsumption,
//     domain/range) can derive.
//   - LinkPredictor: co-occurrence statistics over (subject type,
//     predicate, object type) patterns plus common-neighbor evidence that
//     propose missing edges with a confidence below 1, the
//     "non-deterministic predictive inference" whose transactional
//     consequences FS.11 studies.
//
// Both models emit confidence-annotated results rather than hard facts,
// matching the paper's requirement that every data item may be uncertain.
package semantic

import (
	"math"
	"sort"

	"scdb/internal/er"
	"scdb/internal/graph"
	"scdb/internal/model"
)

// Prediction is one predicted concept membership.
type Prediction struct {
	Concept    string
	Confidence model.Fuzzy
}

// TypePredictor is a multinomial naive-Bayes classifier from attribute
// tokens to concepts, with add-one smoothing.
type TypePredictor struct {
	classDocs   map[string]int
	tokenCounts map[string]map[string]int
	classTokens map[string]int
	vocab       map[string]bool
	totalDocs   int
}

// NewTypePredictor creates an untrained predictor.
func NewTypePredictor() *TypePredictor {
	return &TypePredictor{
		classDocs:   map[string]int{},
		tokenCounts: map[string]map[string]int{},
		classTokens: map[string]int{},
		vocab:       map[string]bool{},
	}
}

// entityTokens extracts the normalized token bag of an entity's attribute
// values (attribute names included, since schema words carry signal too).
func entityTokens(e *model.Entity) []string {
	var out []string
	for _, k := range e.Attrs.Keys() {
		v := e.Attrs[k]
		if v.IsNull() {
			continue
		}
		out = append(out, er.Tokens(k)...)
		out = append(out, er.Tokens(v.Text())...)
	}
	return out
}

// Train adds one labeled example per concept in types.
func (p *TypePredictor) Train(e *model.Entity, types []string) {
	toks := entityTokens(e)
	for _, c := range types {
		p.classDocs[c]++
		p.totalDocs++
		tc, ok := p.tokenCounts[c]
		if !ok {
			tc = map[string]int{}
			p.tokenCounts[c] = tc
		}
		for _, t := range toks {
			tc[t]++
			p.classTokens[c]++
			p.vocab[t] = true
		}
	}
}

// TrainGraph trains from every typed entity in the graph, using typesOf to
// supply labels (typically the reasoner's asserted+inferred types, or just
// the asserted ones).
func (p *TypePredictor) TrainGraph(g *graph.Graph, typesOf func(model.EntityID) []string) int {
	n := 0
	g.ForEachEntity(func(e *model.Entity) bool {
		if ts := typesOf(e.ID); len(ts) > 0 {
			p.Train(e, ts)
			n++
		}
		return true
	})
	return n
}

// Classes returns the trained concepts, sorted.
func (p *TypePredictor) Classes() []string {
	cs := make([]string, 0, len(p.classDocs))
	for c := range p.classDocs {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return cs
}

// Predict returns the topK concepts for the entity with normalized
// posterior confidences (softmax over log-posteriors). An untrained
// predictor returns nil.
func (p *TypePredictor) Predict(e *model.Entity, topK int) []Prediction {
	if p.totalDocs == 0 || topK <= 0 {
		return nil
	}
	toks := entityTokens(e)
	classes := p.Classes()
	logPost := make([]float64, len(classes))
	v := float64(len(p.vocab))
	for i, c := range classes {
		lp := math.Log(float64(p.classDocs[c]) / float64(p.totalDocs))
		denom := float64(p.classTokens[c]) + v
		for _, t := range toks {
			lp += math.Log((float64(p.tokenCounts[c][t]) + 1) / denom)
		}
		logPost[i] = lp
	}
	// Softmax with max-shift for stability.
	maxLP := math.Inf(-1)
	for _, lp := range logPost {
		if lp > maxLP {
			maxLP = lp
		}
	}
	sum := 0.0
	for i := range logPost {
		logPost[i] = math.Exp(logPost[i] - maxLP)
		sum += logPost[i]
	}
	preds := make([]Prediction, len(classes))
	for i, c := range classes {
		preds[i] = Prediction{Concept: c, Confidence: model.Fuzzy(logPost[i] / sum).Clamp()}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Confidence != preds[j].Confidence {
			return preds[i].Confidence > preds[j].Confidence
		}
		return preds[i].Concept < preds[j].Concept
	})
	if len(preds) > topK {
		preds = preds[:topK]
	}
	return preds
}

// SuggestedLink is one predicted edge with its confidence.
type SuggestedLink struct {
	From       model.EntityID
	Predicate  string
	To         model.EntityID
	Confidence model.Fuzzy
}

// LinkPredictor learns (subject type, predicate, object type) patterns and
// suggests missing edges supported by common-neighbor evidence.
type LinkPredictor struct {
	// patterns[pred][subjType][objType] = count
	patterns map[string]map[string]map[string]int
	predObs  map[string]int
}

// NewLinkPredictor creates an untrained predictor.
func NewLinkPredictor() *LinkPredictor {
	return &LinkPredictor{patterns: map[string]map[string]map[string]int{}, predObs: map[string]int{}}
}

// Train tallies the type patterns of every entity-valued edge.
func (l *LinkPredictor) Train(g *graph.Graph, typesOf func(model.EntityID) []string) int {
	n := 0
	g.ForEachEdge(func(e graph.Edge) bool {
		to, ok := e.To.AsRef()
		if !ok {
			return true
		}
		n++
		l.predObs[e.Predicate]++
		pm, ok := l.patterns[e.Predicate]
		if !ok {
			pm = map[string]map[string]int{}
			l.patterns[e.Predicate] = pm
		}
		for _, st := range typesOf(e.From) {
			om, ok := pm[st]
			if !ok {
				om = map[string]int{}
				pm[st] = om
			}
			for _, ot := range typesOf(to) {
				om[ot]++
			}
		}
		return true
	})
	return n
}

// PatternSupport returns how often the (subjType, pred, objType) pattern
// was observed.
func (l *LinkPredictor) PatternSupport(subjType, pred, objType string) int {
	return l.patterns[pred][subjType][objType]
}

// Suggest proposes up to topK missing pred-edges from the entity: targets
// whose type completes a trained pattern, ranked by common-neighbor count
// (via any predicate, both directions) scaled by pattern support.
// Confidence is normalized to (0,1): suggestions are enrichment candidates,
// never hard facts.
func (l *LinkPredictor) Suggest(g *graph.Graph, from model.EntityID, pred string, typesOf func(model.EntityID) []string, topK int) []SuggestedLink {
	if topK <= 0 || l.predObs[pred] == 0 {
		return nil
	}
	// Pattern-compatible object types for this subject.
	objTypes := map[string]int{}
	for _, st := range typesOf(from) {
		for ot, n := range l.patterns[pred][st] {
			objTypes[ot] += n
		}
	}
	if len(objTypes) == 0 {
		return nil
	}
	existing := map[model.EntityID]bool{from: true}
	for _, e := range g.EdgesByPredicate(from, pred) {
		if to, ok := e.To.AsRef(); ok {
			existing[to] = true
		}
	}
	neighborhood := undirectedNeighbors(g, from)

	type scored struct {
		id    model.EntityID
		score float64
	}
	var cands []scored
	g.ForEachEntity(func(cand *model.Entity) bool {
		if existing[cand.ID] {
			return true
		}
		support := 0
		for _, t := range typesOf(cand.ID) {
			support += objTypes[t]
		}
		if support == 0 {
			return true
		}
		common := 0
		for nb := range undirectedNeighbors(g, cand.ID) {
			if neighborhood[nb] {
				common++
			}
		}
		score := float64(support) * (1 + float64(common))
		cands = append(cands, scored{cand.ID, score})
		return true
	})
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > topK {
		cands = cands[:topK]
	}
	maxScore := cands[0].score
	out := make([]SuggestedLink, len(cands))
	for i, c := range cands {
		// Scale into (0, 0.95]: predicted links never reach certainty.
		out[i] = SuggestedLink{
			From:       from,
			Predicate:  pred,
			To:         c.id,
			Confidence: model.Fuzzy(0.95 * c.score / maxScore).Clamp(),
		}
	}
	return out
}

func undirectedNeighbors(g *graph.Graph, id model.EntityID) map[model.EntityID]bool {
	set := map[model.EntityID]bool{}
	for _, nb := range g.Neighbors(id, "") {
		set[nb] = true
	}
	for _, nb := range g.Incoming(id) {
		set[nb] = true
	}
	return set
}
