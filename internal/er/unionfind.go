package er

import (
	"sort"

	"scdb/internal/model"
)

// UnionFind maintains the merge clusters produced by entity resolution,
// with path compression and union by size.
type UnionFind struct {
	parent map[model.EntityID]model.EntityID
	size   map[model.EntityID]int
}

// NewUnionFind creates an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[model.EntityID]model.EntityID),
		size:   make(map[model.EntityID]int),
	}
}

// Find returns the canonical representative of the entity's cluster,
// registering the entity on first sight.
func (u *UnionFind) Find(id model.EntityID) model.EntityID {
	p, ok := u.parent[id]
	if !ok {
		u.parent[id] = id
		u.size[id] = 1
		return id
	}
	if p == id {
		return id
	}
	root := u.Find(p)
	u.parent[id] = root
	return root
}

// Union merges the clusters of a and b; the smaller cluster joins the
// larger, ties keep the lower ID as representative (determinism). It
// reports whether a merge actually happened.
func (u *UnionFind) Union(a, b model.EntityID) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] || (u.size[ra] == u.size[rb] && rb < ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// Same reports whether the two entities are in one cluster.
func (u *UnionFind) Same(a, b model.EntityID) bool {
	return u.Find(a) == u.Find(b)
}

// Clusters returns all clusters with at least minSize members, each sorted
// ascending, ordered by their smallest member.
func (u *UnionFind) Clusters(minSize int) [][]model.EntityID {
	byRoot := map[model.EntityID][]model.EntityID{}
	ids := make([]model.EntityID, 0, len(u.parent))
	for id := range u.parent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		root := u.Find(id)
		byRoot[root] = append(byRoot[root], id)
	}
	var out [][]model.EntityID
	for _, members := range byRoot {
		if len(members) >= minSize {
			out = append(out, members)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
