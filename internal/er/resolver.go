package er

import (
	"fmt"
	"sort"
	"time"

	"scdb/internal/model"
)

// BlockingMode selects how candidate sets are generated.
type BlockingMode int

const (
	// BlockingToken (the zero value) is classic token-prefix blocking:
	// candidates share at least one token prefix. Cheap and byte-stable —
	// the compatibility baseline — but blind to typos in every leading
	// prefix and unbounded on stop-word-like keys until the MaxBlock cap
	// truncates them.
	BlockingToken BlockingMode = iota
	// BlockingANN replaces token blocks with the embedding index: the
	// candidate set is the top-K cosine neighbors, so cost per entity is
	// bounded by K and early-character typos no longer hide duplicates.
	BlockingANN
	// BlockingBoth unions token-block hits with the ANN top-K — maximum
	// recall at the cost of both stages.
	BlockingBoth
)

// ParseBlocking maps the flag spelling ("token", "ann", "both") to a
// mode; "" means BlockingToken.
func ParseBlocking(s string) (BlockingMode, error) {
	switch s {
	case "", "token":
		return BlockingToken, nil
	case "ann":
		return BlockingANN, nil
	case "both":
		return BlockingBoth, nil
	}
	return 0, fmt.Errorf("er: unknown blocking mode %q (want token, ann, or both)", s)
}

// String names the mode as ParseBlocking spells it.
func (m BlockingMode) String() string {
	switch m {
	case BlockingANN:
		return "ann"
	case BlockingBoth:
		return "both"
	}
	return "token"
}

// Config tunes the resolver.
type Config struct {
	// Threshold is the minimum pair score treated as a match. Zero means
	// the default 0.85. Ignored when Advisor is set.
	Threshold float64
	// Blocking selects the candidate-generation strategy (default
	// BlockingToken).
	Blocking BlockingMode
	// BlockPrefix is the blocking-key length in characters (runes). Each
	// token of each string attribute contributes its prefix as a blocking
	// key, so only entities sharing at least one key are ever compared.
	// Zero means the default 4.
	BlockPrefix int
	// MaxBlock caps the number of candidates considered per blocking key;
	// oversized blocks (stop-word-like keys) are skipped beyond the cap,
	// trading recall for bounded cost. Zero means the default 64.
	MaxBlock int
	// TopK is the ANN neighbor count per entity under BlockingANN/Both.
	// Zero means DefaultTopK.
	TopK int
	// EmbedDim is the feature-hashed embedding width under
	// BlockingANN/Both. Zero means DefaultEmbedDim.
	EmbedDim int
	// Advisor reviews scored candidate pairs (nil = ThresholdAdvisor over
	// Threshold). See CurationAdvisor for the purity contract.
	Advisor CurationAdvisor
	// DisableBlocking compares every new entity against every indexed
	// entity — the quadratic ablation baseline for the blocking design
	// choice (see DESIGN.md).
	DisableBlocking bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.85
	}
	if c.BlockPrefix == 0 {
		c.BlockPrefix = 4
	}
	if c.MaxBlock == 0 {
		c.MaxBlock = 64
	}
	if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = DefaultEmbedDim
	}
	if c.Advisor == nil {
		c.Advisor = ThresholdAdvisor{Threshold: c.Threshold}
	}
	return c
}

// Match is one resolved duplicate pair with its similarity score.
type Match struct {
	A, B  model.EntityID
	Score float64
}

// indexed holds what the resolver retains per entity: the normalized value
// tokens, the per-attribute normalized strings, and the source-local key
// (the cross-process identity DigestsSince exports for cross-shard ER).
type indexed struct {
	id     model.EntityID
	key    string
	source string
	tokens []string
	attrs  map[string]string
	// vals caches the per-value similarity derivations (tokens, trigram
	// set, rune decoding) so pair scoring — the ingest hot path — never
	// re-normalizes or re-tokenizes a value per comparison.
	vals []attrVal
}

// Resolver performs incremental entity resolution: entities are added one
// at a time (or source by source) and each addition is compared only
// against the candidates its blocking keys (and, under BlockingANN/Both,
// its embedding neighbors) select. The resolver is schema-agnostic — it
// compares bags of normalized values, so sources with different attribute
// names still match (FS.1's "across different schemata without requiring
// prior knowledge").
//
// Addition splits into a pure half and an ordered half: Prepare reads the
// committed state only (candidate generation + pair scoring — safe to fan
// out across workers against an immutable snapshot), Commit applies the
// order-sensitive effects (union-find, block/ANN insertion, counters) in
// strict record order. Add is exactly Prepare followed by Commit, so a
// serial pass and a parallel pass over the same records produce identical
// state.
type Resolver struct {
	cfg     Config
	blocks  map[string][]int // blocking key → indexes into ents
	ents    []indexed
	byID    map[model.EntityID]int
	uf      *UnionFind
	ann     *annIndex
	matches []Match
	// Comparisons counts candidate pairs logically scored — the work
	// metric the incremental-vs-batch experiment (E-FS1) reports. It is
	// counted at commit time under the serial skip rules, so it is
	// identical for serial and parallel scoring.
	Comparisons int

	candidates int // candidate pairs gathered (pre union-find filtering)
	annProbes  int // ANN bucket members examined during rerank
	blockSkips int // candidate slots dropped by the MaxBlock cap
}

// NewResolver creates a resolver with the given configuration.
func NewResolver(cfg Config) *Resolver {
	r := &Resolver{
		cfg:    cfg.withDefaults(),
		blocks: make(map[string][]int),
		byID:   make(map[model.EntityID]int),
		uf:     NewUnionFind(),
	}
	if r.useANN() {
		r.ann = newANNIndex(r.cfg.EmbedDim)
	}
	return r
}

func (r *Resolver) useANN() bool {
	return !r.cfg.DisableBlocking && (r.cfg.Blocking == BlockingANN || r.cfg.Blocking == BlockingBoth)
}

func (r *Resolver) useTokenBlocks() bool {
	return !r.cfg.DisableBlocking && (r.cfg.Blocking == BlockingToken || r.cfg.Blocking == BlockingBoth)
}

// Stats is a snapshot of the resolver's work counters (exported into the
// obs metrics registry and the CLI \stats curation line).
type Stats struct {
	// Comparisons counts candidate pairs logically scored.
	Comparisons int
	// Candidates counts candidate pairs gathered by blocking/ANN before
	// union-find filtering.
	Candidates int
	// ANNProbes counts ANN bucket members examined during cosine rerank.
	ANNProbes int
	// Blocks is the number of distinct blocking keys indexed.
	Blocks int
	// BlockSkips counts candidate slots dropped by the MaxBlock cap
	// (oversized, stop-word-like blocks).
	BlockSkips int
	// Matches is the number of duplicate pairs accepted so far.
	Matches int
}

// Stats returns the current work counters. Callers synchronize with
// writers (the curation pipeline reads under its own mutex).
func (r *Resolver) Stats() Stats {
	return Stats{
		Comparisons: r.Comparisons,
		Candidates:  r.candidates,
		ANNProbes:   r.annProbes,
		Blocks:      len(r.blocks),
		BlockSkips:  r.blockSkips,
		Matches:     len(r.matches),
	}
}

// index extracts the comparable representation of an entity.
func index(e *model.Entity) indexed {
	ix := indexed{id: e.ID, key: e.Key, source: e.Source, attrs: map[string]string{}}
	seen := map[string]bool{}
	for _, k := range e.Attrs.Keys() {
		v := e.Attrs[k]
		if v.IsNull() {
			continue
		}
		text := Normalize(v.Text())
		if text == "" {
			continue
		}
		ix.attrs[k] = text
		if len(text) >= minIdentifyingLen {
			ix.vals = append(ix.vals, newAttrVal(text))
		}
		for _, t := range Tokens(text) {
			if !seen[t] {
				seen[t] = true
				ix.tokens = append(ix.tokens, t)
			}
		}
	}
	sort.Strings(ix.tokens)
	return ix
}

// runePrefix returns the first n runes of s. Byte slicing would split a
// multi-byte UTF-8 rune mid-sequence and produce invalid blocking keys on
// non-ASCII attributes.
func runePrefix(s string, n int) string {
	if len(s) <= n {
		return s // n bytes always cover at least n runes
	}
	seen := 0
	for i := range s {
		if seen == n {
			return s[:i]
		}
		seen++
	}
	return s
}

// blockKeys derives the blocking keys of an indexed entity: the prefix of
// every token.
func (r *Resolver) blockKeys(ix indexed) []string {
	return blockKeysFor(ix, r.cfg.BlockPrefix)
}

// blockKeysFor is the shared implementation: the resolver and the
// cross-shard Exchange must derive identical keys for the same entity, or
// a pair split across shards would never become a candidate.
func blockKeysFor(ix indexed, prefix int) []string {
	seen := map[string]bool{}
	var keys []string
	for _, t := range ix.tokens {
		k := runePrefix(t, prefix)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// minIdentifyingLen is the minimum normalized length for an attribute
// value to count as identifying in pairwise scoring: very short values
// ("emea", "ok") are categorical, shared by many distinct entities, and
// must not produce perfect-match evidence on their own.
const minIdentifyingLen = 6

// sortedIntersection counts common elements of two sorted, duplicate-free
// slices — the resolver's hot path avoids the map allocations of the
// general Jaccard.
func sortedIntersection(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// pairScore computes the similarity of two indexed entities: the maximum
// over (best matching identifying-attribute pair, whole-record token
// Jaccard, token-set containment), so a strong identifying attribute (a
// name), overall value overlap, and one record extending the other
// ("Ibuprofen" vs "Ibuprofen (Advil)") all count. Short categorical values
// contribute only through the whole-record measures. The token lists are
// sorted and deduplicated by index(), so set measures run allocation-free.
func pairScore(a, b indexed) float64 {
	var score float64
	if len(a.tokens) > 0 && len(b.tokens) > 0 {
		inter := sortedIntersection(a.tokens, b.tokens)
		union := len(a.tokens) + len(b.tokens) - inter
		score = float64(inter) / float64(union)
		minLen := len(a.tokens)
		if len(b.tokens) < minLen {
			minLen = len(b.tokens)
		}
		if c := float64(inter) / float64(minLen); c > score {
			score = c
		}
	} else if len(a.tokens) == 0 && len(b.tokens) == 0 {
		score = 1
	}
	if score >= 1 {
		return 1 // exact containment: the fuzzy measures cannot improve it
	}
	// Fuzzy measures run over the cached value derivations (vals holds
	// every identifying-length value): same math as StringSim, but
	// normalization, tokenization, trigram sets, and rune decoding were
	// all paid once at index time, not per candidate pair.
	for i := range a.vals {
		for j := range b.vals {
			if s := valSim(&a.vals[i], &b.vals[j]); s > score {
				score = s
				if score == 1 {
					return 1
				}
			}
		}
	}
	return score
}

// Prepared carries the pure half of one entity's resolution: its index
// representation, blocking keys, embedding, and the scored candidate set —
// everything computable from the resolver's committed state without
// mutating it. Prepare calls for distinct entities may run concurrently
// (against the same frozen resolver); each Prepared is then handed to
// Commit in record order.
type Prepared struct {
	ix     indexed
	keys   []string  // token blocking keys (token/both modes)
	vec    []float32 // embedding (ann/both modes)
	cands  []int     // candidate positions, in serial candidate order
	scores []float64 // pair scores, aligned with cands
	accept []bool    // advisor verdicts, aligned with cands
	probes int       // ANN bucket members examined
	skips  int       // candidate slots dropped by the MaxBlock cap

	blockDur time.Duration // candidate generation (blocking + ANN probe)
	scoreDur time.Duration // pair scoring + advisor review
}

// BlockDur reports time spent generating this entity's candidate set.
func (p *Prepared) BlockDur() time.Duration { return p.blockDur }

// ScoreDur reports time spent scoring this entity's candidate pairs.
func (p *Prepared) ScoreDur() time.Duration { return p.scoreDur }

// Candidates reports the size of the gathered candidate set.
func (p *Prepared) Candidates() int { return len(p.cands) }

// Prepare runs candidate generation and pair scoring for one arriving
// entity against the resolver's committed state, without mutating it. The
// entity's ID need not be final yet (Commit assigns it); same-source
// candidates are gathered but never scored, mirroring Add's skip rule.
func (r *Resolver) Prepare(e *model.Entity) *Prepared {
	start := time.Now()
	p := &Prepared{ix: index(e)}
	if r.cfg.DisableBlocking {
		p.cands = make([]int, len(r.ents))
		for ci := range r.ents {
			p.cands[ci] = ci
		}
	} else {
		var seen map[int]bool
		if r.useTokenBlocks() {
			p.keys = r.blockKeys(p.ix)
			seen = map[int]bool{}
			for _, key := range p.keys {
				cands := r.blocks[key]
				if len(cands) > r.cfg.MaxBlock {
					p.skips += len(cands) - r.cfg.MaxBlock
					cands = cands[:r.cfg.MaxBlock]
				}
				for _, ci := range cands {
					if !seen[ci] {
						seen[ci] = true
						p.cands = append(p.cands, ci)
					}
				}
			}
		}
		if r.useANN() {
			p.vec = embedTokens(p.ix.tokens, r.cfg.EmbedDim)
			// Same-source positions are filtered before the top-K cut:
			// they can never match, and ranking them would let a burst of
			// sibling records crowd real neighbors out of K (it would also
			// make the parallel snapshot diverge from a serial pass).
			nbrs, probed := r.ann.topK(p.vec, r.cfg.TopK, func(pos int) bool {
				return r.ents[pos].source == p.ix.source || (seen != nil && seen[pos])
			})
			p.probes = probed
			p.cands = append(p.cands, nbrs...)
		}
	}
	p.blockDur = time.Since(start)

	start = time.Now()
	p.scores = make([]float64, len(p.cands))
	p.accept = make([]bool, len(p.cands))
	for i, ci := range p.cands {
		cand := r.ents[ci]
		if cand.source == p.ix.source {
			continue // never scored; Commit skips it the same way
		}
		s := pairScore(p.ix, cand)
		p.scores[i] = s
		p.accept[i] = r.cfg.Advisor.Accept(view(p.ix), view(cand), s)
	}
	p.scoreDur = time.Since(start)
	return p
}

// Commit applies a Prepared entity under its final ID, in record order:
// candidates are walked in the serial order, pairs already clustered are
// skipped (without counting), accepted pairs are unioned, and the entity
// is indexed (blocks, ANN, union-find) for future arrivals. The resulting
// state — clusters, matches, and the Comparisons counter — is identical
// to a serial Add of the same record sequence.
func (r *Resolver) Commit(p *Prepared, id model.EntityID) []Match {
	p.ix.id = id
	pos := len(r.ents)
	var found []Match
	for i, ci := range p.cands {
		cand := r.ents[ci]
		if cand.source == p.ix.source || r.uf.Same(cand.id, id) {
			continue
		}
		r.Comparisons++
		if p.accept[i] {
			r.uf.Union(id, cand.id)
			found = append(found, Match{A: cand.id, B: id, Score: p.scores[i]})
		}
	}
	r.candidates += len(p.cands)
	r.annProbes += p.probes
	r.blockSkips += p.skips
	for _, key := range p.keys {
		r.blocks[key] = append(r.blocks[key], pos)
	}
	if r.useANN() {
		r.ann.add(pos, p.vec)
	}
	r.ents = append(r.ents, p.ix)
	r.byID[id] = pos
	r.uf.Find(id)
	r.matches = append(r.matches, found...)
	return found
}

// Add is the serial convenience over the Prepare/Commit split: one entity
// is prepared against the committed state and committed immediately under
// its own ID. The parallel ingest path calls the halves separately
// (Prepare fanned out across workers, Commit in record order); both routes
// produce identical resolver state. Entities from the same source are
// never matched to each other (sources are assumed internally
// duplicate-free; the generic dirty-table workload overrides this by
// giving each record its own source).
func (r *Resolver) Add(e *model.Entity) []Match {
	return r.Commit(r.Prepare(e), e.ID)
}

// AddAll resolves a batch of entities in record order via Add.
func (r *Resolver) AddAll(es []*model.Entity) []Match {
	var all []Match
	for _, e := range es {
		all = append(all, r.Add(e)...)
	}
	return all
}

// Matches returns every match found so far.
func (r *Resolver) Matches() []Match { return r.matches }

// Canonical returns the cluster representative of the entity.
func (r *Resolver) Canonical(id model.EntityID) model.EntityID { return r.uf.Find(id) }

// Same reports whether two entities resolved to one cluster.
func (r *Resolver) Same(a, b model.EntityID) bool { return r.uf.Same(a, b) }

// Clusters returns the duplicate clusters (size >= 2).
func (r *Resolver) Clusters() [][]model.EntityID { return r.uf.Clusters(2) }

// ResolveBatch is the non-incremental baseline (the "all-to-all entity
// resolution performed comprehensively across all data sources" the paper
// warns about): it rebuilds a fresh resolver over all entities and returns
// its matches. Cost grows with the full corpus on every call, which is
// exactly what E-FS1 measures against the incremental path.
func ResolveBatch(es []*model.Entity, cfg Config) (*Resolver, []Match) {
	r := NewResolver(cfg)
	return r, r.AddAll(es)
}
