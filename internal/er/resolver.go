package er

import (
	"sort"

	"scdb/internal/model"
)

// Config tunes the resolver.
type Config struct {
	// Threshold is the minimum pair score treated as a match. Zero means
	// the default 0.85.
	Threshold float64
	// BlockPrefix is the blocking-key length in characters. Each token of
	// each string attribute contributes its prefix as a blocking key, so
	// only entities sharing at least one key are ever compared. Zero means
	// the default 4.
	BlockPrefix int
	// MaxBlock caps the number of candidates considered per blocking key;
	// oversized blocks (stop-word-like keys) are skipped beyond the cap,
	// trading recall for bounded cost. Zero means the default 64.
	MaxBlock int
	// DisableBlocking compares every new entity against every indexed
	// entity — the quadratic ablation baseline for the blocking design
	// choice (see DESIGN.md).
	DisableBlocking bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.85
	}
	if c.BlockPrefix == 0 {
		c.BlockPrefix = 4
	}
	if c.MaxBlock == 0 {
		c.MaxBlock = 64
	}
	return c
}

// Match is one resolved duplicate pair with its similarity score.
type Match struct {
	A, B  model.EntityID
	Score float64
}

// indexed holds what the resolver retains per entity: the normalized value
// tokens and the per-attribute normalized strings.
type indexed struct {
	id     model.EntityID
	source string
	tokens []string
	attrs  map[string]string
}

// Resolver performs incremental entity resolution: entities are added one
// at a time (or source by source) and each addition is compared only
// against the candidates selected by shared blocking keys. The resolver is
// schema-agnostic — it compares bags of normalized values, so sources with
// different attribute names still match (FS.1's "across different
// schemata without requiring prior knowledge").
type Resolver struct {
	cfg     Config
	blocks  map[string][]int // blocking key → indexes into ents
	ents    []indexed
	byID    map[model.EntityID]int
	uf      *UnionFind
	matches []Match
	// Comparisons counts candidate pairs actually scored — the work metric
	// the incremental-vs-batch experiment (E-FS1) reports.
	Comparisons int
}

// NewResolver creates a resolver with the given configuration.
func NewResolver(cfg Config) *Resolver {
	return &Resolver{
		cfg:    cfg.withDefaults(),
		blocks: make(map[string][]int),
		byID:   make(map[model.EntityID]int),
		uf:     NewUnionFind(),
	}
}

// index extracts the comparable representation of an entity.
func index(e *model.Entity) indexed {
	ix := indexed{id: e.ID, source: e.Source, attrs: map[string]string{}}
	seen := map[string]bool{}
	for _, k := range e.Attrs.Keys() {
		v := e.Attrs[k]
		if v.IsNull() {
			continue
		}
		text := Normalize(v.Text())
		if text == "" {
			continue
		}
		ix.attrs[k] = text
		for _, t := range Tokens(text) {
			if !seen[t] {
				seen[t] = true
				ix.tokens = append(ix.tokens, t)
			}
		}
	}
	sort.Strings(ix.tokens)
	return ix
}

// blockKeys derives the blocking keys of an indexed entity: the prefix of
// every token.
func (r *Resolver) blockKeys(ix indexed) []string {
	seen := map[string]bool{}
	var keys []string
	for _, t := range ix.tokens {
		k := t
		if len(k) > r.cfg.BlockPrefix {
			k = k[:r.cfg.BlockPrefix]
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// minIdentifyingLen is the minimum normalized length for an attribute
// value to count as identifying in pairwise scoring: very short values
// ("emea", "ok") are categorical, shared by many distinct entities, and
// must not produce perfect-match evidence on their own.
const minIdentifyingLen = 6

// sortedIntersection counts common elements of two sorted, duplicate-free
// slices — the resolver's hot path avoids the map allocations of the
// general Jaccard.
func sortedIntersection(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// pairScore computes the similarity of two indexed entities: the maximum
// over (best matching identifying-attribute pair, whole-record token
// Jaccard, token-set containment), so a strong identifying attribute (a
// name), overall value overlap, and one record extending the other
// ("Ibuprofen" vs "Ibuprofen (Advil)") all count. Short categorical values
// contribute only through the whole-record measures. The token lists are
// sorted and deduplicated by index(), so set measures run allocation-free.
func pairScore(a, b indexed) float64 {
	var score float64
	if len(a.tokens) > 0 && len(b.tokens) > 0 {
		inter := sortedIntersection(a.tokens, b.tokens)
		union := len(a.tokens) + len(b.tokens) - inter
		score = float64(inter) / float64(union)
		minLen := len(a.tokens)
		if len(b.tokens) < minLen {
			minLen = len(b.tokens)
		}
		if c := float64(inter) / float64(minLen); c > score {
			score = c
		}
	} else if len(a.tokens) == 0 && len(b.tokens) == 0 {
		score = 1
	}
	if score >= 1 {
		return 1 // exact containment: the fuzzy measures cannot improve it
	}
	for _, av := range a.attrs {
		if len(av) < minIdentifyingLen {
			continue
		}
		for _, bv := range b.attrs {
			if len(bv) < minIdentifyingLen {
				continue
			}
			if s := StringSim(av, bv); s > score {
				score = s
				if score == 1 {
					return 1
				}
			}
		}
	}
	return score
}

// Add incrementally resolves one entity: it is compared against candidates
// sharing a blocking key, clustered with those scoring above the
// threshold, and indexed for future arrivals. Matches found by this
// addition are returned. Entities from the same source are never matched
// to each other (sources are assumed internally duplicate-free; the
// generic dirty-table workload overrides this by giving each record its
// own source).
func (r *Resolver) Add(e *model.Entity) []Match {
	ix := index(e)
	pos := len(r.ents)
	var found []Match
	compare := func(ci int) {
		cand := r.ents[ci]
		if cand.source == ix.source || r.uf.Same(cand.id, ix.id) {
			return
		}
		r.Comparisons++
		if s := pairScore(ix, cand); s >= r.cfg.Threshold {
			r.uf.Union(ix.id, cand.id)
			found = append(found, Match{A: cand.id, B: ix.id, Score: s})
		}
	}
	if r.cfg.DisableBlocking {
		for ci := range r.ents {
			compare(ci)
		}
	} else {
		seenCand := map[int]bool{}
		for _, key := range r.blockKeys(ix) {
			cands := r.blocks[key]
			if len(cands) > r.cfg.MaxBlock {
				cands = cands[:r.cfg.MaxBlock]
			}
			for _, ci := range cands {
				if seenCand[ci] {
					continue
				}
				seenCand[ci] = true
				compare(ci)
			}
			r.blocks[key] = append(r.blocks[key], pos)
		}
	}
	r.ents = append(r.ents, ix)
	r.byID[ix.id] = pos
	r.uf.Find(ix.id)
	r.matches = append(r.matches, found...)
	return found
}

// AddAll incrementally resolves a batch of entities in order.
func (r *Resolver) AddAll(es []*model.Entity) []Match {
	var all []Match
	for _, e := range es {
		all = append(all, r.Add(e)...)
	}
	return all
}

// Matches returns every match found so far.
func (r *Resolver) Matches() []Match { return r.matches }

// Canonical returns the cluster representative of the entity.
func (r *Resolver) Canonical(id model.EntityID) model.EntityID { return r.uf.Find(id) }

// Same reports whether two entities resolved to one cluster.
func (r *Resolver) Same(a, b model.EntityID) bool { return r.uf.Same(a, b) }

// Clusters returns the duplicate clusters (size >= 2).
func (r *Resolver) Clusters() [][]model.EntityID { return r.uf.Clusters(2) }

// ResolveBatch is the non-incremental baseline (the "all-to-all entity
// resolution performed comprehensively across all data sources" the paper
// warns about): it rebuilds a fresh resolver over all entities and returns
// its matches. Cost grows with the full corpus on every call, which is
// exactly what E-FS1 measures against the incremental path.
func ResolveBatch(es []*model.Entity, cfg Config) (*Resolver, []Match) {
	r := NewResolver(cfg)
	return r, r.AddAll(es)
}
