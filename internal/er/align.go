package er

import (
	"sort"

	"scdb/internal/model"
)

// Alignment maps attribute names of one source to the best-matching
// attribute names of another, discovered from instance-value overlap rather
// than schema documentation — the paper's requirement that resolution work
// "across different schemata without requiring prior knowledge about
// external data sources" (FS.1).
type Alignment struct {
	// Pairs maps source-A attribute → source-B attribute.
	Pairs map[string]string
	// Scores maps source-A attribute → the overlap score of its pair.
	Scores map[string]float64
}

// AlignAttributes aligns the attributes of two record samples by value
// overlap: attribute a matches attribute b when the Jaccard similarity of
// their normalized value sets is maximal and at least minOverlap. Each B
// attribute is used at most once (greedy best-first assignment).
func AlignAttributes(a, b []model.Record, minOverlap float64) Alignment {
	avals := valueSets(a)
	bvals := valueSets(b)

	type cand struct {
		aAttr, bAttr string
		score        float64
	}
	var cands []cand
	for aAttr, as := range avals {
		for bAttr, bs := range bvals {
			s := setJaccard(as, bs)
			if s >= minOverlap {
				cands = append(cands, cand{aAttr, bAttr, s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].aAttr != cands[j].aAttr {
			return cands[i].aAttr < cands[j].aAttr
		}
		return cands[i].bAttr < cands[j].bAttr
	})
	out := Alignment{Pairs: map[string]string{}, Scores: map[string]float64{}}
	usedB := map[string]bool{}
	for _, c := range cands {
		if _, taken := out.Pairs[c.aAttr]; taken || usedB[c.bAttr] {
			continue
		}
		out.Pairs[c.aAttr] = c.bAttr
		out.Scores[c.aAttr] = c.score
		usedB[c.bAttr] = true
	}
	return out
}

// valueSets builds the normalized value set of each attribute.
func valueSets(recs []model.Record) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, r := range recs {
		for k, v := range r {
			if v.IsNull() {
				continue
			}
			n := Normalize(v.Text())
			if n == "" {
				continue
			}
			set, ok := out[k]
			if !ok {
				set = map[string]bool{}
				out[k] = set
			}
			set[n] = true
		}
	}
	return out
}

func setJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for v := range small {
		if large[v] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}
