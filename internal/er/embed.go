package er

import "math"

// DefaultEmbedDim is the feature-hashed embedding width used when
// Config.EmbedDim is zero: wide enough that unrelated records rarely
// collide on sign patterns, small enough that a dot product costs less
// than one pairScore call.
const DefaultEmbedDim = 64

// The embedder is deliberately model-free: token and character-trigram
// features of the indexed entity are hashed into a fixed-dimension vector
// (feature hashing / the "hashing trick"), each feature adding ±1 to the
// dimension its hash selects, and the result is L2-normalized. Two records
// that share most of their surface text — across schemata, token order,
// and small typos — land at high cosine similarity, with zero external
// dependencies and bit-identical output on every platform, so the ANN
// blocking stage stays hermetic and deterministic (tests and the
// serial-vs-parallel differential depend on that).

// fnv64a is FNV-1a over the string bytes (inlined to keep the embedding
// loop allocation-free).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes a feature hash (splitmix64 finalizer) so that the
// bucket index and the sign bit are decorrelated.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// addFeature folds one hashed feature into the accumulator.
func addFeature(acc []float32, h uint64, w float32) {
	h = mix64(h)
	i := int(h % uint64(len(acc)))
	if h&(1<<63) != 0 {
		acc[i] -= w
	} else {
		acc[i] += w
	}
}

// embedTokens hashes the token and trigram features of a token list into
// a dim-wide L2-normalized vector. Tokens are whole-word features;
// boundary-padded trigrams of each token carry typo robustness (a
// one-character edit disturbs at most three trigrams). The function is
// pure: identical tokens produce identical vectors.
func embedTokens(tokens []string, dim int) []float32 {
	acc := make([]float32, dim)
	// Digit-bearing tokens are identifiers, not fuzzy-matchable text (the
	// scorer withholds fuzzy measures when they disagree — see
	// digitTokensAgree), and their values are often per-record noise
	// (readings, sequence numbers) that would drown the label features.
	// Embed only the prose tokens, unless there is nothing else.
	n := 0
	for _, t := range tokens {
		if !hasDigit(t) {
			n++
		}
	}
	for _, t := range tokens {
		if n > 0 && hasDigit(t) {
			continue
		}
		addFeature(acc, fnv64a(t), 2) // whole-token feature, double weight
		// Trigram features over the boundary-padded rune sequence. The
		// rolling hash mixes the three rune values directly, so no trigram
		// substring is materialized.
		runes := []rune(t)
		const pad = rune(0)
		for i := -2; i < len(runes); i++ {
			var r0, r1, r2 rune = pad, pad, pad
			if i >= 0 {
				r0 = runes[i]
			}
			if i+1 >= 0 && i+1 < len(runes) {
				r1 = runes[i+1]
			}
			if i+2 < len(runes) {
				r2 = runes[i+2]
			}
			h := uint64(r0)<<42 ^ uint64(r1)<<21 ^ uint64(r2)
			addFeature(acc, h^0x9e3779b97f4a7c15, 1)
		}
	}
	var norm float64
	for _, v := range acc {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range acc {
			acc[i] *= inv
		}
	}
	return acc
}

func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// dot is the cosine similarity of two embedTokens outputs (both are unit
// vectors, so the dot product is the cosine).
func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}
