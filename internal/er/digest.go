package er

// Cross-shard entity resolution. A sharded cluster hash-partitions entity
// ownership by key, so each shard's resolver only ever sees its own
// records — two entities that would have merged on a single node can land
// on different shards and never become candidates for each other. The
// router closes that gap by pulling Digests (the pairwise-scoring evidence
// of each indexed entity) from every shard and feeding them to an
// Exchange, which reruns candidate generation and pair scoring across
// shard boundaries with the same blocking keys, the same pairScore, and
// the same advisor as the local resolvers. Because scoring is pure and
// union-find closure is order-independent, the set of clusters the cluster
// converges to is the set a single node would have produced — the property
// the 1-shard vs 3-shard differential test pins down (modulo MaxBlock
// truncation, which can select different candidate subsets when a block
// is split across shards; see DESIGN.md).

import (
	"sort"

	"scdb/internal/model"
)

// Digest is the cross-process form of one locally indexed entity: exactly
// the evidence pairScore consumes (normalized value tokens and normalized
// attribute strings), keyed by the stable (source, key) identity instead
// of the shard-local graph ID, which has no meaning on other nodes.
type Digest struct {
	Source string `json:"source"`
	Key    string `json:"key"`
	// Tokens are the normalized, sorted, deduplicated value tokens — the
	// blocking keys and the embedding both derive from them, so the
	// receiver reconstructs candidate generation without further state.
	Tokens []string `json:"tokens,omitempty"`
	// Attrs maps attribute name → normalized value string.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// RefKey names an entity across process boundaries.
type RefKey struct {
	Source string `json:"source"`
	Key    string `json:"key"`
}

// DigestBatch is one incremental pull of a shard's resolver state: the
// entities indexed and the duplicate pairs accepted since the caller's
// last watermarks, plus the new watermarks. Merges convey the shard's
// local cluster structure pair by pair; the receiver's union-find takes
// the transitive closure, so shipping only the increments is lossless.
type DigestBatch struct {
	Digests []Digest    `json:"digests,omitempty"`
	Merges  [][2]RefKey `json:"merges,omitempty"`
	// Ents and Matches are the resolver's totals after this batch — the
	// watermarks to pass to the next DigestsSince call.
	Ents    int `json:"ents"`
	Matches int `json:"matches"`
}

// DigestsSince exports the entities indexed and the matches accepted at or
// past the given watermarks (0, 0 exports everything). The caller
// synchronizes with writers the same way Stats does: the curation
// pipeline calls this under its own mutex.
func (r *Resolver) DigestsSince(entsSince, matchesSince int) DigestBatch {
	b := DigestBatch{Ents: len(r.ents), Matches: len(r.matches)}
	if entsSince < 0 {
		entsSince = 0
	}
	if matchesSince < 0 {
		matchesSince = 0
	}
	for i := entsSince; i < len(r.ents); i++ {
		ix := &r.ents[i]
		b.Digests = append(b.Digests, Digest{
			Source: ix.source,
			Key:    ix.key,
			Tokens: ix.tokens,
			Attrs:  ix.attrs,
		})
	}
	for i := matchesSince; i < len(r.matches); i++ {
		m := r.matches[i]
		ra, aok := r.refOf(m.A)
		rb, bok := r.refOf(m.B)
		if aok && bok {
			b.Merges = append(b.Merges, [2]RefKey{ra, rb})
		}
	}
	return b
}

// refOf maps a graph ID back to its stable cross-process identity.
func (r *Resolver) refOf(id model.EntityID) (RefKey, bool) {
	pos, ok := r.byID[id]
	if !ok {
		return RefKey{}, false
	}
	ix := &r.ents[pos]
	return RefKey{Source: ix.source, Key: ix.key}, true
}

// digestIndexed rebuilds the resolver's internal representation from a
// digest: tokens and attrs arrive pre-normalized, so only the per-value
// similarity derivations (trigram sets, rune decoding) are recomputed.
func digestIndexed(d Digest) indexed {
	ix := indexed{key: d.Key, source: d.Source, tokens: d.Tokens, attrs: d.Attrs}
	if ix.attrs == nil {
		ix.attrs = map[string]string{}
	}
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if text := d.Attrs[k]; len(text) >= minIdentifyingLen {
			ix.vals = append(ix.vals, newAttrVal(text))
		}
	}
	return ix
}

// xelem is one digested entity inside the exchange.
type xelem struct {
	shard int
	ix    indexed
}

// Exchange is the router-side half of cross-shard ER. Digest batches from
// every shard stream in (AddBatch); each new digest is matched against the
// digests of *other* shards — same-shard pairs are the local resolvers'
// job — using the same candidate generation and scoring the shards run
// locally. Two union-finds track cluster structure: ufLocal holds only the
// shards' own merges, ufAll additionally holds the accepted cross-shard
// pairs, so clusters(ufLocal) − clusters(ufAll) is exactly the number of
// entity merges the cluster would lose without the exchange — the
// correction the router applies to the summed per-shard entity counts.
//
// Exchange is not goroutine-safe; the router serializes AddBatch and
// Stats under its own mutex.
type Exchange struct {
	cfg    Config
	elems  []xelem
	byRef  map[RefKey]int
	blocks map[string][]int
	ann    *annIndex

	ufLocal *UnionFind
	ufAll   *UnionFind

	comparisons int
	candidates  int
	accepted    int
	annProbes   int
	blockSkips  int
}

// NewExchange creates an exchange. Pass the same Config the shards run so
// candidate generation and acceptance agree across the boundary.
func NewExchange(cfg Config) *Exchange {
	x := &Exchange{
		cfg:     cfg.withDefaults(),
		byRef:   map[RefKey]int{},
		blocks:  map[string][]int{},
		ufLocal: NewUnionFind(),
		ufAll:   NewUnionFind(),
	}
	if x.useANN() {
		x.ann = newANNIndex(x.cfg.EmbedDim)
	}
	return x
}

func (x *Exchange) useANN() bool {
	return !x.cfg.DisableBlocking && (x.cfg.Blocking == BlockingANN || x.cfg.Blocking == BlockingBoth)
}

func (x *Exchange) useTokenBlocks() bool {
	return !x.cfg.DisableBlocking && (x.cfg.Blocking == BlockingToken || x.cfg.Blocking == BlockingBoth)
}

// xid maps an element position to its synthetic union-find ID.
func xid(pos int) model.EntityID { return model.EntityID(pos + 1) }

// AddBatch folds one shard's digest batch in: digests first (they may be
// referenced by this batch's merges), then the shard's local merge pairs.
// Re-pulling an already-seen digest is a no-op, so the exchange is
// idempotent across router restarts that reset the watermarks to zero.
func (x *Exchange) AddBatch(shard int, b DigestBatch) {
	for _, d := range b.Digests {
		x.addDigest(shard, d)
	}
	for _, m := range b.Merges {
		a := x.elemFor(shard, m[0])
		bb := x.elemFor(shard, m[1])
		x.ufLocal.Union(xid(a), xid(bb))
		x.ufAll.Union(xid(a), xid(bb))
	}
}

// elemFor resolves a merge reference, registering a bare element if the
// digest has not arrived (defensive: DigestsSince snapshots ents and
// matches together, so in-order batches always carry the digest first).
func (x *Exchange) elemFor(shard int, ref RefKey) int {
	if pos, ok := x.byRef[ref]; ok {
		return pos
	}
	pos := len(x.elems)
	x.elems = append(x.elems, xelem{shard: shard, ix: indexed{key: ref.Key, source: ref.Source, attrs: map[string]string{}}})
	x.byRef[ref] = pos
	x.ufLocal.Find(xid(pos))
	x.ufAll.Find(xid(pos))
	return pos
}

// addDigest indexes one digest and scores it against the other shards'
// candidates, mirroring Resolver.Prepare/Commit across the shard boundary.
func (x *Exchange) addDigest(shard int, d Digest) {
	ref := RefKey{Source: d.Source, Key: d.Key}
	if _, ok := x.byRef[ref]; ok {
		return
	}
	ix := digestIndexed(d)
	pos := len(x.elems)
	id := xid(pos)

	var cands []int
	var keys []string
	var vec []float32
	var seen map[int]bool
	switch {
	case x.cfg.DisableBlocking:
		cands = make([]int, len(x.elems))
		for ci := range x.elems {
			cands[ci] = ci
		}
	default:
		if x.useTokenBlocks() {
			keys = blockKeysFor(ix, x.cfg.BlockPrefix)
			seen = map[int]bool{}
			for _, key := range keys {
				cs := x.blocks[key]
				if len(cs) > x.cfg.MaxBlock {
					x.blockSkips += len(cs) - x.cfg.MaxBlock
					cs = cs[:x.cfg.MaxBlock]
				}
				for _, ci := range cs {
					if !seen[ci] {
						seen[ci] = true
						cands = append(cands, ci)
					}
				}
			}
		}
		if x.useANN() {
			vec = embedTokens(ix.tokens, x.cfg.EmbedDim)
			nbrs, probed := x.ann.topK(vec, x.cfg.TopK, func(p int) bool {
				return x.elems[p].shard == shard || x.elems[p].ix.source == ix.source || seen[p]
			})
			x.annProbes += probed
			cands = append(cands, nbrs...)
		}
	}
	x.candidates += len(cands)
	for _, ci := range cands {
		cand := &x.elems[ci]
		// Same-shard pairs were already resolved (or correctly rejected)
		// locally; same-source pairs never match; already-clustered pairs
		// need no further evidence.
		if cand.shard == shard || cand.ix.source == ix.source || x.ufAll.Same(xid(ci), id) {
			continue
		}
		x.comparisons++
		s := pairScore(ix, cand.ix)
		if x.cfg.Advisor.Accept(view(ix), view(cand.ix), s) {
			x.ufAll.Union(id, xid(ci))
			x.accepted++
		}
	}
	for _, key := range keys {
		x.blocks[key] = append(x.blocks[key], pos)
	}
	if x.useANN() {
		x.ann.add(pos, vec)
	}
	x.elems = append(x.elems, xelem{shard: shard, ix: ix})
	x.byRef[ref] = pos
	x.ufLocal.Find(id)
	x.ufAll.Find(id)
}

// SameRef reports whether two entities — possibly on different shards —
// resolved to one global cluster.
func (x *Exchange) SameRef(a, b RefKey) bool {
	pa, aok := x.byRef[a]
	pb, bok := x.byRef[b]
	return aok && bok && x.ufAll.Same(xid(pa), xid(pb))
}

// ExchangeStats snapshots the exchange's work counters.
type ExchangeStats struct {
	// Digests counts entities exchanged (one per distinct (source, key)).
	Digests int `json:"digests"`
	// Comparisons/Candidates/Accepted count cross-shard pair scoring work,
	// in the same units as the local resolver's Stats.
	Comparisons int `json:"comparisons"`
	Candidates  int `json:"candidates"`
	Accepted    int `json:"accepted"`
	// ANNProbes/BlockSkips mirror the local resolver's counters for the
	// exchange's own candidate generation.
	ANNProbes  int `json:"ann_probes"`
	BlockSkips int `json:"block_skips"`
	// Clusters is the global entity count across the whole cluster: local
	// and cross-shard merges both collapse clusters.
	Clusters int `json:"clusters"`
	// CrossMerges is how many merges exist only because of the exchange —
	// the correction to subtract from the summed per-shard entity counts.
	CrossMerges int `json:"cross_merges"`
}

// Stats computes the current counters. Cluster counting walks every
// element (near-linear with union-find compression).
func (x *Exchange) Stats() ExchangeStats {
	local := x.countClusters(x.ufLocal)
	all := x.countClusters(x.ufAll)
	return ExchangeStats{
		Digests:     len(x.elems),
		Comparisons: x.comparisons,
		Candidates:  x.candidates,
		Accepted:    x.accepted,
		ANNProbes:   x.annProbes,
		BlockSkips:  x.blockSkips,
		Clusters:    all,
		CrossMerges: local - all,
	}
}

func (x *Exchange) countClusters(uf *UnionFind) int {
	roots := map[model.EntityID]bool{}
	for pos := range x.elems {
		roots[uf.Find(xid(pos))] = true
	}
	return len(roots)
}
