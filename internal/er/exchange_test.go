package er

import (
	"testing"

	"scdb/internal/model"
)

// twoShardResolvers simulates the router's exchange loop over two shards'
// resolvers: every entity added to either resolver, then all digests pulled
// from watermark zero and folded into one exchange.
func exchangeOver(t *testing.T, cfg Config, shards ...[]*model.Entity) (*Exchange, []*Resolver) {
	t.Helper()
	x := NewExchange(cfg)
	var rs []*Resolver
	for si, ents := range shards {
		r := NewResolver(cfg)
		for _, e := range ents {
			r.Add(e)
		}
		rs = append(rs, r)
		x.AddBatch(si, r.DigestsSince(0, 0))
	}
	return x, rs
}

func TestExchangeMergesAcrossShards(t *testing.T) {
	// The duplicate pair lives on different shards AND different sources,
	// so no local resolver ever compares it.
	x, _ := exchangeOver(t, Config{},
		[]*model.Entity{
			ent(1, "drugbank", map[string]string{"name": "Methotrexate"}),
			ent(2, "drugbank", map[string]string{"name": "Warfarin"}),
		},
		[]*model.Entity{
			ent(3, "ctd", map[string]string{"chemical": "Methotrexate"}),
		},
	)
	if !x.SameRef(RefKey{Source: "drugbank", Key: "k1"}, RefKey{Source: "ctd", Key: "k3"}) {
		t.Fatal("cross-shard duplicate not merged")
	}
	if x.SameRef(RefKey{Source: "drugbank", Key: "k2"}, RefKey{Source: "ctd", Key: "k3"}) {
		t.Fatal("distinct entities merged")
	}
	st := x.Stats()
	if st.CrossMerges != 1 {
		t.Errorf("cross merges = %d, want 1", st.CrossMerges)
	}
	if st.Clusters != 2 {
		t.Errorf("clusters = %d, want 2 (merged pair + Warfarin)", st.Clusters)
	}
	if st.Comparisons == 0 || st.Candidates == 0 || st.Accepted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExchangeSkipsSameShardAndSameSource(t *testing.T) {
	// Same shard: the local resolver's job; the exchange must not score it.
	x, rs := exchangeOver(t, Config{},
		[]*model.Entity{
			ent(1, "drugbank", map[string]string{"name": "Methotrexate"}),
			ent(2, "ctd", map[string]string{"chemical": "Methotrexate"}),
		},
	)
	if x.Stats().Comparisons != 0 {
		t.Errorf("same-shard pair scored by the exchange: %+v", x.Stats())
	}
	// But the local merge still shapes the global cluster structure.
	if !x.SameRef(RefKey{Source: "drugbank", Key: "k1"}, RefKey{Source: "ctd", Key: "k2"}) {
		t.Fatal("local merge lost in exchange")
	}
	if got := x.Stats().CrossMerges; got != 0 {
		t.Errorf("cross merges = %d, want 0 (merge was local)", got)
	}
	if rs[0].Stats().Matches != 1 {
		t.Fatalf("local resolver matches = %d", rs[0].Stats().Matches)
	}

	// Same source on different shards never matches (source keys are
	// unique within a source).
	x2, _ := exchangeOver(t, Config{},
		[]*model.Entity{ent(1, "drugbank", map[string]string{"name": "Methotrexate"})},
		[]*model.Entity{ent(2, "drugbank", map[string]string{"name": "Methotrexate"})},
	)
	if x2.Stats().Comparisons != 0 || x2.Stats().CrossMerges != 0 {
		t.Errorf("same-source cross-shard pair scored: %+v", x2.Stats())
	}
}

func TestExchangeIdempotentAndIncremental(t *testing.T) {
	x := NewExchange(Config{})
	r0 := NewResolver(Config{})
	r1 := NewResolver(Config{})
	r0.Add(ent(1, "drugbank", map[string]string{"name": "Methotrexate"}))
	b0 := r0.DigestsSince(0, 0)
	x.AddBatch(0, b0)

	// Incremental pull: only the new entity ships.
	r1.Add(ent(2, "ctd", map[string]string{"chemical": "Methotrexate"}))
	b1 := r1.DigestsSince(0, 0)
	if len(b1.Digests) != 1 || b1.Ents != 1 {
		t.Fatalf("batch = %+v", b1)
	}
	x.AddBatch(1, b1)
	r1.Add(ent(3, "ctd", map[string]string{"chemical": "Warfarin"}))
	b2 := r1.DigestsSince(b1.Ents, b1.Matches)
	if len(b2.Digests) != 1 || b2.Digests[0].Key != "k3" {
		t.Fatalf("incremental batch re-shipped: %+v", b2)
	}
	x.AddBatch(1, b2)

	want := x.Stats()
	if want.CrossMerges != 1 {
		t.Fatalf("cross merges = %d, want 1", want.CrossMerges)
	}
	// Replaying everything from watermark zero (a router restart) changes
	// nothing: digests dedup by (source, key).
	x.AddBatch(0, r0.DigestsSince(0, 0))
	x.AddBatch(1, r1.DigestsSince(0, 0))
	if got := x.Stats(); got != want {
		t.Errorf("replay changed stats: %+v vs %+v", got, want)
	}
}

func TestExchangeMatchesSingleNodeClusters(t *testing.T) {
	// The order-independence property the differential test relies on:
	// entities spread over 3 shards resolve to the same cluster count a
	// single resolver computes over the whole set.
	all := []*model.Entity{
		ent(1, "a", map[string]string{"name": "Methotrexate"}),
		ent(2, "b", map[string]string{"drug": "Methotrexate"}),
		ent(3, "c", map[string]string{"compound": "Methotrexate"}),
		ent(4, "a", map[string]string{"name": "Warfarin"}),
		ent(5, "b", map[string]string{"drug": "Warfarin"}),
		ent(6, "a", map[string]string{"name": "Ibuprofen"}),
	}
	single := NewResolver(Config{})
	for _, e := range all {
		single.Add(e)
	}
	singleClusters := 0
	{
		roots := map[model.EntityID]bool{}
		for _, e := range all {
			roots[single.Canonical(e.ID)] = true
		}
		singleClusters = len(roots)
	}

	x, _ := exchangeOver(t, Config{},
		[]*model.Entity{all[0], all[3]}, // shard 0: a
		[]*model.Entity{all[1], all[4]}, // shard 1: b
		[]*model.Entity{all[2], all[5]}, // shard 2: c + a
	)
	if got := x.Stats().Clusters; got != singleClusters {
		t.Errorf("sharded clusters = %d, single-node = %d", got, singleClusters)
	}
}
