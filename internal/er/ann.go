package er

import "sort"

// The ANN index approximates "which already-curated entities are nearest
// in embedding space?" with random-hyperplane LSH: each entity's unit
// vector is reduced to a short signature of sign bits (one bit per
// hyperplane), once per table. Entities sharing a signature in any table
// land in one bucket, and a query gathers its buckets' members and
// reranks them by exact cosine to keep the top K. Insertion is O(tables ·
// bits · dim) — incremental, matching the resolver's one-entity-at-a-time
// ingestion — and the hyperplanes are generated from a fixed seed, so the
// index is deterministic across processes.
const (
	annTables = 8 // independent hash tables (recall amplification)
	annBits   = 8 // hyperplanes (signature bits) per table
)

// DefaultTopK is the ANN neighbor count used when Config.TopK is zero.
const DefaultTopK = 8

type annIndex struct {
	dim     int
	planes  [][]float32          // annTables*annBits hyperplanes, row-major
	buckets []map[uint32][]int32 // per table: signature → entity positions
	vecs    [][]float32          // position → embedding (append-only)
}

// splitmix64 steps the seed and returns the next pseudo-random word — the
// only randomness source here, so hyperplanes are identical on every run.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}

func newANNIndex(dim int) *annIndex {
	a := &annIndex{
		dim:     dim,
		planes:  make([][]float32, annTables*annBits),
		buckets: make([]map[uint32][]int32, annTables),
	}
	seed := uint64(0x5cdb5cdb5cdb5cdb)
	for i := range a.planes {
		p := make([]float32, dim)
		for j := range p {
			// Uniform in [-1, 1): direction is all that matters for a
			// sign test, so no Gaussian shaping is needed.
			p[j] = float32(splitmix64(&seed)>>11)/float32(1<<52) - 1
		}
		a.planes[i] = p
	}
	for t := range a.buckets {
		a.buckets[t] = make(map[uint32][]int32)
	}
	return a
}

// signature computes the sign-bit signature of vec under table t's planes.
func (a *annIndex) signature(t int, vec []float32) uint32 {
	var sig uint32
	base := t * annBits
	for b := 0; b < annBits; b++ {
		if dot(a.planes[base+b], vec) >= 0 {
			sig |= 1 << b
		}
	}
	return sig
}

// add indexes the vector under position pos (positions must arrive in
// order; pos == len(vecs)).
func (a *annIndex) add(pos int, vec []float32) {
	a.vecs = append(a.vecs, vec)
	for t := 0; t < annTables; t++ {
		sig := a.signature(t, vec)
		a.buckets[t][sig] = append(a.buckets[t][sig], int32(pos))
	}
}

// topK returns up to k indexed positions nearest to vec by cosine,
// gathered from the query's LSH buckets and reranked exactly. Positions
// for which skip returns true are never candidates (the resolver skips
// same-source entities and positions already selected by token blocks).
// probed reports how many bucket members were examined — the er.ann_probes
// work metric. Order is deterministic: cosine descending, position
// ascending on ties.
func (a *annIndex) topK(vec []float32, k int, skip func(pos int) bool) (nbrs []int, probed int) {
	if k <= 0 || len(a.vecs) == 0 {
		return nil, 0
	}
	type scored struct {
		pos int
		sim float64
	}
	seen := make(map[int32]bool)
	var cands []scored
	for t := 0; t < annTables; t++ {
		for _, pos := range a.buckets[t][a.signature(t, vec)] {
			if seen[pos] {
				continue
			}
			seen[pos] = true
			if skip != nil && skip(int(pos)) {
				continue
			}
			probed++
			cands = append(cands, scored{pos: int(pos), sim: dot(vec, a.vecs[pos])})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	nbrs = make([]int, len(cands))
	for i, c := range cands {
		nbrs[i] = c.pos
	}
	return nbrs, probed
}
