// Package er implements entity resolution for the relation layer (paper
// FS.1): deciding which instance records from independently produced
// sources denote the same real-world entity, without manual ETL or prior
// schema alignment.
//
// The package provides the classical batch formulation (all candidate
// pairs within blocks) and the incremental formulation the paper calls for
// — each arriving entity is compared only against the candidates its
// blocking keys select, so integrating a new source never re-resolves the
// whole database. Cross-schema matching uses value-overlap attribute
// alignment (see Align) so no a-priori knowledge of the external source's
// schema is required.
package er

import (
	"sort"
	"strings"
	"unicode"
)

// Normalize lower-cases, trims, and collapses non-alphanumeric runs into
// single spaces — the canonical form all similarity measures operate on.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			lastSpace = false
		} else if !lastSpace {
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits a normalized string into its word tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// Jaccard returns |A∩B| / |A∪B| over two token multisets (treated as
// sets). Two empty sets are identical (1); one empty set matches nothing.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return float64(inter) / float64(union)
}

// Levenshtein returns the edit distance between two strings (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// LevenshteinSim normalizes edit distance into a similarity in [0,1].
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	maxLen := len([]rune(a))
	if l := len([]rune(b)); l > maxLen {
		maxLen = l
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Trigrams returns the padded character trigrams of the normalized string.
func Trigrams(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	padded := "  " + n + "  "
	var out []string
	runes := []rune(padded)
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, string(runes[i:i+3]))
	}
	return out
}

// TrigramSim is Jaccard similarity over character trigrams — robust to
// token reordering and small typos.
func TrigramSim(a, b string) float64 {
	return Jaccard(Trigrams(a), Trigrams(b))
}

// StringSim is the combined string similarity the resolver uses: the
// maximum of token Jaccard, trigram, and normalized edit similarity, so
// that reordered tokens ("Arthritis, Rheumatoid"), typos, and short codes
// are each handled by the measure that suits them.
//
// Digit-bearing tokens act as identifiers: when the two strings carry
// different digit tokens ("sensor unit 0033" vs "sensor unit 0054"), the
// fuzzy measures are withheld and only token overlap counts — serial
// numbers differing by one digit are different things, not typos.
func StringSim(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		return 1
	}
	ta, tb := Tokens(na), Tokens(nb)
	s := Jaccard(ta, tb)
	if !digitTokensAgree(ta, tb) {
		return s
	}
	if t := TrigramSim(na, nb); t > s {
		s = t
	}
	// Edit similarity only for short strings: O(len²) and meaningless for
	// long text.
	if len(na) <= 64 && len(nb) <= 64 {
		if l := LevenshteinSim(na, nb); l > s {
			s = l
		}
	}
	return s
}

// digitTokensAgree reports whether the digit-bearing token sets of the two
// token lists are equal (vacuously true when either has none).
func digitTokensAgree(a, b []string) bool {
	da, db := digitTokens(a), digitTokens(b)
	if len(da) == 0 || len(db) == 0 {
		return true
	}
	if len(da) != len(db) {
		return false
	}
	for t := range da {
		if !db[t] {
			return false
		}
	}
	return true
}

func digitTokens(tokens []string) map[string]bool {
	var out map[string]bool
	for _, t := range tokens {
		if strings.ContainsAny(t, "0123456789") {
			if out == nil {
				out = map[string]bool{}
			}
			out[t] = true
		}
	}
	return out
}

// attrVal caches every per-value derivation the fuzzy measures need —
// sorted unique tokens, sorted unique padded trigrams, the digit-bearing
// token subset, and the decoded runes — so the resolver's pair-scoring
// hot path computes them once per entity instead of once per candidate
// pair. text must already be normalized.
type attrVal struct {
	text   string
	tokens []string // sorted, unique
	digits []string // sorted, unique digit-bearing tokens
	tris   []string // sorted, unique padded trigrams
	runes  []rune
}

func newAttrVal(text string) attrVal {
	v := attrVal{text: text, runes: []rune(text)}
	v.tokens = sortedUnique(strings.Fields(text))
	for _, t := range v.tokens {
		if strings.ContainsAny(t, "0123456789") {
			v.digits = append(v.digits, t)
		}
	}
	padded := make([]rune, 0, len(v.runes)+4)
	padded = append(padded, ' ', ' ')
	padded = append(padded, v.runes...)
	padded = append(padded, ' ', ' ')
	tris := make([]string, 0, len(padded)-2)
	for i := 0; i+3 <= len(padded); i++ {
		tris = append(tris, string(padded[i:i+3]))
	}
	v.tris = sortedUnique(tris)
	return v
}

func sortedUnique(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// jaccardSorted is Jaccard over two sorted duplicate-free slices — the
// allocation-free twin of Jaccard.
func jaccardSorted(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// valSim is StringSim over pre-normalized, pre-derived values: identical
// result, none of the per-pair derivation cost.
func valSim(a, b *attrVal) float64 {
	if a.text == b.text {
		return 1
	}
	s := jaccardSorted(a.tokens, b.tokens)
	if !sortedSetsAgree(a.digits, b.digits) {
		return s
	}
	if t := jaccardSorted(a.tris, b.tris); t > s {
		s = t
	}
	if len(a.text) <= 64 && len(b.text) <= 64 {
		maxLen := len(a.runes)
		if len(b.runes) > maxLen {
			maxLen = len(b.runes)
		}
		// Edit distance is at least the length gap; skip the O(len²) DP
		// when even a perfect alignment could not beat the score so far.
		if gap := 1 - float64(maxLen-minLenInt(len(a.runes), len(b.runes)))/float64(maxLen); gap > s {
			if l := 1 - float64(levenshteinRunes(a.runes, b.runes))/float64(maxLen); l > s {
				s = l
			}
		}
	}
	return s
}

// sortedSetsAgree mirrors digitTokensAgree over sorted unique slices:
// vacuously true when either side is empty, otherwise set equality.
func sortedSetsAgree(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func minLenInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// levenshteinRunes is Levenshtein on pre-decoded runes with the three-way
// minimum inlined — the variadic minInt showed up beside the DP itself in
// ingest profiles.
func levenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			m := prev[j] + 1
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			d := prev[j-1]
			if ra[i-1] != rb[j-1] {
				d++
			}
			if d < m {
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
