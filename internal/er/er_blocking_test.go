package er

import (
	"strings"
	"testing"
	"unicode/utf8"

	"scdb/internal/datagen"
	"scdb/internal/model"
)

func TestRunePrefix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abcdef", "abcd"},
		{"abc", "abc"},
		{"", ""},
		{"überwachung", "über"}, // 2-byte rune inside the window
		{"abcédef", "abcé"},     // multi-byte rune straddles byte 4
		{"日本語テスト", "日本語テ"},      // every rune is 3 bytes
		{"αβγ", "αβγ"},          // fewer runes than the prefix
	}
	for _, c := range cases {
		if got := runePrefix(c.in, 4); got != c.want {
			t.Errorf("runePrefix(%q, 4) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Regression: blockKeys used to byte-slice k[:BlockPrefix], splitting a
// multi-byte UTF-8 rune that straddles the boundary and emitting invalid
// keys on non-ASCII attributes ("abcé" became "abc\xc3"). Keys must be
// valid UTF-8 rune prefixes, and non-ASCII near-duplicates must land in
// the same block and match.
func TestBlockKeysMultiByteRunes(t *testing.T) {
	r := NewResolver(Config{})
	ix := index(ent(1, "src", map[string]string{"name": "abcédef überwachungsstation"}))
	keys := r.blockKeys(ix)
	want := map[string]bool{"abcé": false, "über": false}
	for _, k := range keys {
		if !utf8.ValidString(k) {
			t.Errorf("block key %q is not valid UTF-8", k)
		}
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("block keys %q missing rune-prefix key %q", keys, k)
		}
	}

	m := r.Add(ent(1, "src-a", map[string]string{"name": "Überwachungsstation Müllheim"}))
	if m != nil {
		t.Fatalf("first entity matches nothing: %v", m)
	}
	if m := r.Add(ent(2, "src-b", map[string]string{"label": "Überwachungsstation Müllheim"})); len(m) != 1 {
		t.Fatalf("non-ASCII duplicate not matched via blocking: %v", m)
	}
}

// vetoAdvisor rejects pairs across a named source pair regardless of
// score — the shape of a rule-based curation model behind the pluggable
// seam.
type vetoAdvisor struct {
	threshold float64
	vetoA     string
	vetoB     string
}

func (v vetoAdvisor) Name() string { return "veto" }

func (v vetoAdvisor) Accept(a, b EntityView, score float64) bool {
	if (a.Source == v.vetoA && b.Source == v.vetoB) || (a.Source == v.vetoB && b.Source == v.vetoA) {
		return false
	}
	if len(a.Tokens) == 0 || a.Attrs == nil {
		return false // views must carry the index projection
	}
	return score >= v.threshold
}

func TestCurationAdvisorPluggable(t *testing.T) {
	attrs := map[string]string{"name": "methotrexate trexall"}
	base := NewResolver(Config{Threshold: 0.8})
	base.Add(ent(1, "drugbank", attrs))
	if m := base.Add(ent(2, "ctd", attrs)); len(m) != 1 {
		t.Fatalf("threshold advisor should accept the pair: %v", m)
	}

	r := NewResolver(Config{Advisor: vetoAdvisor{threshold: 0.8, vetoA: "drugbank", vetoB: "ctd"}})
	r.Add(ent(1, "drugbank", attrs))
	if m := r.Add(ent(2, "ctd", attrs)); m != nil {
		t.Fatalf("veto advisor must reject the drugbank/ctd pair: %v", m)
	}
	if m := r.Add(ent(3, "uniprot", attrs)); len(m) == 0 {
		t.Fatal("veto advisor must still accept non-vetoed pairs")
	}
	if r.Comparisons == 0 {
		t.Error("rejected pairs still count as comparisons")
	}
}

// ingestIoT drives a resolver over the datasets in delivery order and
// returns the key→ID assignment.
func ingestIoT(cfg Config, sets []datagen.Dataset) (*Resolver, map[string]model.EntityID) {
	r := NewResolver(cfg)
	ids := map[string]model.EntityID{}
	next := model.EntityID(1)
	for _, ds := range sets {
		for _, spec := range ds.Entities {
			id, ok := ids[spec.Key]
			if !ok {
				id = next
				next++
				ids[spec.Key] = id
			}
			r.Add(&model.Entity{ID: id, Key: spec.Key, Source: ds.Source, Types: spec.Types, Attrs: spec.Attrs, Confidence: 1})
		}
	}
	return r, ids
}

// iotPrecision is pairwise cluster precision against the key's station
// suffix — the guard that recall is not bought by over-merging.
func iotPrecision(r *Resolver, ids map[string]model.EntityID) float64 {
	station := map[model.EntityID]string{}
	for k, id := range ids {
		station[id] = k[len(k)-6:]
	}
	tp, fp := 0, 0
	for _, cl := range r.Clusters() {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				if station[cl[i]] == station[cl[j]] {
					tp++
				} else {
					fp++
				}
			}
		}
	}
	if tp+fp == 0 {
		return 1
	}
	return float64(tp) / float64(tp+fp)
}

func iotRecall(r *Resolver, ids map[string]model.EntityID, truth []datagen.DirtyPair) float64 {
	hit := 0
	for _, p := range truth {
		if r.Same(ids[p.KeyA], ids[p.KeyB]) {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// TestBlockingRecallDifferential measures candidate-generation recall on
// the IoT near-duplicate corpus across blocking modes against the
// quadratic (DisableBlocking) ceiling. The corpus is adversarial for
// token-prefix blocking — a noisy record's identifying code token takes
// an early-character typo (hashing it into a different block) and every
// other label token is so common its block overflows the per-key cap —
// while the trigram embedding barely moves, so ANN candidate generation
// must dominate token blocking, and the union mode must dominate both.
func TestBlockingRecallDifferential(t *testing.T) {
	sets, truth := datagen.IoTSensors(7, 2, 240, 1, 0.3)
	mode := func(cfg Config) (float64, Stats) {
		r, ids := ingestIoT(cfg, sets)
		if p := iotPrecision(r, ids); p < 0.9 {
			t.Errorf("%+v: cluster precision %.3f — recall bought by over-merging", cfg, p)
		}
		return iotRecall(r, ids, truth), r.Stats()
	}
	quadRecall, quadStats := mode(Config{DisableBlocking: true})
	tokRecall, tokStats := mode(Config{Blocking: BlockingToken, MaxBlock: 16})
	annRecall, annStats := mode(Config{Blocking: BlockingANN, MaxBlock: 16})
	bothRecall, bothStats := mode(Config{Blocking: BlockingBoth, MaxBlock: 16})

	t.Logf("recall: quadratic=%.3f token=%.3f ann=%.3f both=%.3f", quadRecall, tokRecall, annRecall, bothRecall)
	t.Logf("comparisons: quadratic=%d token=%d ann=%d both=%d", quadStats.Comparisons, tokStats.Comparisons, annStats.Comparisons, bothStats.Comparisons)

	if quadRecall < 0.99 {
		t.Fatalf("quadratic baseline must find (nearly) all duplicates, got %.3f", quadRecall)
	}
	if annRecall <= tokRecall {
		t.Errorf("ann recall %.3f must beat token recall %.3f on the typo corpus", annRecall, tokRecall)
	}
	if bothRecall < annRecall || bothRecall < tokRecall {
		t.Errorf("union mode recall %.3f must dominate token %.3f and ann %.3f", bothRecall, tokRecall, annRecall)
	}
	if quadRecall < bothRecall {
		t.Errorf("quadratic ceiling %.3f below union mode %.3f", quadRecall, bothRecall)
	}
	if annStats.Comparisons*4 > quadStats.Comparisons {
		t.Errorf("ann mode must score far fewer pairs than quadratic: %d vs %d", annStats.Comparisons, quadStats.Comparisons)
	}
	if tokStats.BlockSkips == 0 {
		t.Error("vocabulary blocks must overflow the per-key cap on this corpus")
	}
	if annStats.ANNProbes == 0 || bothStats.ANNProbes == 0 {
		t.Error("ann modes must report embedding-index probes")
	}
	if tokStats.ANNProbes != 0 {
		t.Errorf("token mode must not probe the embedding index, got %d", tokStats.ANNProbes)
	}
	if quadStats.BlockSkips != 0 || quadStats.Blocks != 0 {
		t.Errorf("quadratic mode maintains no blocks, got blocks=%d skips=%d", quadStats.Blocks, quadStats.BlockSkips)
	}
}

func TestBlockingModeParsing(t *testing.T) {
	for in, want := range map[string]BlockingMode{"": BlockingToken, "token": BlockingToken, "ann": BlockingANN, "both": BlockingBoth} {
		got, err := ParseBlocking(in)
		if err != nil || got != want {
			t.Errorf("ParseBlocking(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBlocking("lsh"); err == nil || !strings.Contains(err.Error(), "lsh") {
		t.Errorf("ParseBlocking must reject unknown modes, got err=%v", err)
	}
}

// TestEmbedDeterminism: identical token sets embed identically, similar
// strings land closer than dissimilar ones, and vectors are unit-norm.
func TestEmbedDeterminism(t *testing.T) {
	a := embedTokens([]string{"calibrated", "thermal", "station"}, DefaultEmbedDim)
	b := embedTokens([]string{"calibrated", "thermal", "station"}, DefaultEmbedDim)
	if dot(a, b) < 0.999 {
		t.Fatalf("identical inputs must embed identically, cos=%f", dot(a, b))
	}
	typo := embedTokens([]string{"calibratde", "thermal", "station"}, DefaultEmbedDim)
	far := embedTokens([]string{"orbital", "acoustic", "sensor"}, DefaultEmbedDim)
	if dot(a, typo) <= dot(a, far) {
		t.Errorf("typo neighbor (cos=%f) must be closer than unrelated (cos=%f)", dot(a, typo), dot(a, far))
	}
	var norm float64
	for _, v := range a {
		norm += float64(v) * float64(v)
	}
	if norm < 0.999 || norm > 1.001 {
		t.Errorf("embedding must be L2-normalized, |v|²=%f", norm)
	}
}
