package er

// EntityView is the read-only projection of a candidate entity handed to a
// CurationAdvisor: the source name, the sorted deduplicated normalized
// value tokens, and the normalized string attributes. The slices and map
// are shared with the resolver's index and must not be mutated. The
// entity's graph ID is deliberately absent — pair review runs before the
// arriving entity's ID is assigned on the parallel scoring path, and an
// ID-dependent verdict would break the serial/parallel equivalence.
type EntityView struct {
	Source string
	Tokens []string
	Attrs  map[string]string
}

// CurationAdvisor decides whether a scored candidate pair is a duplicate.
// It is the pluggable seam for richer curation models — a learned matcher,
// source-pair rules, or an (offline-distilled) LLM verdict table — while
// the default stays a plain threshold over the pair score.
//
// Accept must be pure and deterministic: it is called from parallel
// scoring workers against immutable snapshots, and the pipeline's
// serial-vs-parallel differential guarantees (and tests) that corpus
// answers are byte-identical for every parallelism setting. An advisor
// that consults mutable state or randomness voids that property. Verdicts
// are still applied in strict record order, so an advisor never sees
// un-committed merges.
type CurationAdvisor interface {
	// Name identifies the advisor in stats and traces.
	Name() string
	// Accept reports whether the pair (with its pairScore) is a match.
	Accept(a, b EntityView, score float64) bool
}

// ThresholdAdvisor is the default CurationAdvisor: accept exactly when the
// pair score reaches the threshold — the classical behavior the rest of
// the resolver's guarantees are calibrated against.
type ThresholdAdvisor struct {
	Threshold float64
}

// Name implements CurationAdvisor.
func (t ThresholdAdvisor) Name() string { return "threshold" }

// Accept implements CurationAdvisor.
func (t ThresholdAdvisor) Accept(_, _ EntityView, score float64) bool {
	return score >= t.Threshold
}

// view projects an indexed entity for advisor review (no copies; see
// EntityView's sharing contract).
func view(ix indexed) EntityView {
	return EntityView{Source: ix.source, Tokens: ix.tokens, Attrs: ix.attrs}
}
