package er

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scdb/internal/model"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  Warfarin ":           "warfarin",
		"Arthritis, Rheumatoid": "arthritis rheumatoid",
		"N-Acetyl—p—aminophen":  "n acetyl p aminophen",
		"":                      "",
		"___":                   "",
		"ABC123":                "abc123",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokensAndJaccard(t *testing.T) {
	if got := Tokens("Rheumatoid, Arthritis!"); len(got) != 2 || got[0] != "rheumatoid" {
		t.Errorf("Tokens = %v", got)
	}
	if Tokens("") != nil {
		t.Error("Tokens of empty must be nil")
	}
	if j := Jaccard([]string{"a", "b"}, []string{"b", "c"}); j != 1.0/3 {
		t.Errorf("Jaccard = %v", j)
	}
	if Jaccard(nil, nil) != 1 {
		t.Error("both empty = 1")
	}
	if Jaccard([]string{"a"}, nil) != 0 {
		t.Error("one empty = 0")
	}
	// Duplicates are treated as sets.
	if j := Jaccard([]string{"a", "a", "b"}, []string{"a", "b", "b"}); j != 1 {
		t.Errorf("multiset collapse = %v", j)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"warfarin", "warfarin", 0},
		{"warfarin", "warfarine", 1},
		{"acetaminophen", "paracetamol", 9},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if s := LevenshteinSim("warfarin", "warfarine"); s < 0.88 || s > 0.89 {
		t.Errorf("LevenshteinSim = %v", s)
	}
	if LevenshteinSim("", "") != 1 {
		t.Error("empty strings are identical")
	}
}

func TestTrigramSim(t *testing.T) {
	if s := TrigramSim("warfarin", "warfarin"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	if s := TrigramSim("warfarin", "warfarine"); s < 0.6 {
		t.Errorf("typo sim = %v", s)
	}
	if s := TrigramSim("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
	if got := Trigrams(""); got != nil {
		t.Error("Trigrams of empty must be nil")
	}
}

func TestStringSim(t *testing.T) {
	// Token reorder handled by Jaccard.
	if s := StringSim("Rheumatoid Arthritis", "Arthritis, Rheumatoid"); s != 1 {
		t.Errorf("reorder = %v", s)
	}
	// Typos handled by edit distance.
	if s := StringSim("Methotrexate", "Methotrexat"); s < 0.9 {
		t.Errorf("typo = %v", s)
	}
	if s := StringSim("Warfarin", "Ibuprofen"); s > 0.4 {
		t.Errorf("different drugs too similar: %v", s)
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind()
	if !u.Union(1, 2) {
		t.Error("first union must merge")
	}
	if u.Union(1, 2) {
		t.Error("repeat union must not merge")
	}
	u.Union(3, 4)
	u.Union(2, 3)
	if !u.Same(1, 4) {
		t.Error("transitive cluster broken")
	}
	if u.Same(1, 5) {
		t.Error("separate entity in cluster")
	}
	cl := u.Clusters(2)
	if len(cl) != 1 || len(cl[0]) != 4 {
		t.Errorf("Clusters = %v", cl)
	}
	// Singleton excluded at minSize 2, included at 1.
	u.Find(9)
	if len(u.Clusters(2)) != 1 {
		t.Error("singleton must not appear at minSize 2")
	}
	// Find/Same register ids on first sight: 5 (from the Same call above)
	// and 9 are singletons alongside the merged cluster.
	if len(u.Clusters(1)) != 3 {
		t.Error("singletons must appear at minSize 1")
	}
}

func ent(id model.EntityID, source string, attrs map[string]string) *model.Entity {
	rec := model.Record{}
	for k, v := range attrs {
		rec[k] = model.String(v)
	}
	return &model.Entity{ID: id, Key: fmt.Sprintf("k%d", id), Source: source, Attrs: rec, Confidence: 1}
}

func TestIncrementalResolution(t *testing.T) {
	r := NewResolver(Config{Threshold: 0.8})
	// DrugBank-style schema.
	m := r.Add(ent(1, "drugbank", map[string]string{"name": "Methotrexate", "targets": "DHFR"}))
	if m != nil {
		t.Errorf("first entity matches nothing: %v", m)
	}
	// CTD-style schema: different attribute names, same values.
	m = r.Add(ent(2, "ctd", map[string]string{"chemical": "Methotrexate"}))
	if len(m) != 1 || !r.Same(1, 2) {
		t.Fatalf("cross-source duplicate not found: %v", m)
	}
	if m[0].Score < 0.8 {
		t.Errorf("score = %v", m[0].Score)
	}
	// A distinct drug must not match.
	m = r.Add(ent(3, "uniprot", map[string]string{"name": "Ibuprofen"}))
	if m != nil {
		t.Errorf("Ibuprofen matched: %v", m)
	}
	if got := r.Canonical(2); got != r.Canonical(1) {
		t.Error("canonical broken")
	}
	if len(r.Clusters()) != 1 {
		t.Errorf("Clusters = %v", r.Clusters())
	}
}

func TestSameSourceNeverMatches(t *testing.T) {
	r := NewResolver(Config{})
	r.Add(ent(1, "s", map[string]string{"name": "Warfarin"}))
	m := r.Add(ent(2, "s", map[string]string{"name": "Warfarin"}))
	if m != nil {
		t.Error("same-source records must not match")
	}
}

func TestTypoMatch(t *testing.T) {
	r := NewResolver(Config{Threshold: 0.85})
	r.Add(ent(1, "a", map[string]string{"name": "Acetaminophen"}))
	m := r.Add(ent(2, "b", map[string]string{"drug": "Acetaminophe"})) // dropped char
	if len(m) != 1 {
		t.Errorf("typo duplicate not matched: %v", m)
	}
}

func TestBlockingPrunesComparisons(t *testing.T) {
	// 100 entities with disjoint names: with blocking, nothing shares a
	// key, so zero comparisons happen.
	r := NewResolver(Config{})
	for i := 0; i < 100; i++ {
		r.Add(ent(model.EntityID(i+1), fmt.Sprintf("s%d", i), map[string]string{
			"name": fmt.Sprintf("uniq%04d item", i),
		}))
	}
	// All share the token "item" → prefix "item" collides; cap bounds it.
	if r.Comparisons > 100*64 {
		t.Errorf("comparisons = %d, cap broken", r.Comparisons)
	}
	r2 := NewResolver(Config{})
	for i := 0; i < 100; i++ {
		r2.Add(ent(model.EntityID(i+1), fmt.Sprintf("s%d", i), map[string]string{
			"name": fmt.Sprintf("%04dzz", i), // distinct 4-char prefixes
		}))
	}
	if r2.Comparisons != 0 {
		t.Errorf("disjoint names: comparisons = %d, want 0", r2.Comparisons)
	}
}

func TestBatchEqualsIncrementalClusters(t *testing.T) {
	mk := func() []*model.Entity {
		return []*model.Entity{
			ent(1, "a", map[string]string{"name": "Warfarin", "use": "blood clot"}),
			ent(2, "b", map[string]string{"drug": "Warfarin"}),
			ent(3, "c", map[string]string{"chem": "warfarin sodium", "name": "Warfarin"}),
			ent(4, "a", map[string]string{"name": "Ibuprofen"}),
			ent(5, "b", map[string]string{"drug": "Ibuprofen (Advil)"}),
			ent(6, "c", map[string]string{"name": "Methotrexate"}),
		}
	}
	_, batchMatches := ResolveBatch(mk(), Config{Threshold: 0.8})
	inc := NewResolver(Config{Threshold: 0.8})
	incMatches := inc.AddAll(mk())
	if len(batchMatches) != len(incMatches) {
		t.Errorf("batch %d matches, incremental %d", len(batchMatches), len(incMatches))
	}
	if !inc.Same(1, 2) || !inc.Same(2, 3) {
		t.Error("warfarin cluster incomplete")
	}
	if !inc.Same(4, 5) {
		t.Error("ibuprofen cluster incomplete")
	}
	if inc.Same(1, 6) || inc.Same(1, 4) {
		t.Error("false merge")
	}
}

func TestDisableBlockingAblation(t *testing.T) {
	mk := func() []*model.Entity {
		var es []*model.Entity
		for i := 0; i < 60; i++ {
			// Each real entity has a distinct leading token, so blocking
			// keys separate non-duplicates.
			es = append(es, ent(model.EntityID(i+1), fmt.Sprintf("s%d", i%4),
				map[string]string{"name": fmt.Sprintf("%04dxx", i/4)}))
		}
		return es
	}
	blocked := NewResolver(Config{})
	blocked.AddAll(mk())
	exhaustive := NewResolver(Config{DisableBlocking: true})
	exhaustive.AddAll(mk())
	// Exhaustive comparison does strictly more work...
	if exhaustive.Comparisons <= blocked.Comparisons {
		t.Errorf("exhaustive %d vs blocked %d comparisons", exhaustive.Comparisons, blocked.Comparisons)
	}
	// ...for the same clusters on this corpus (blocking loses no recall
	// when duplicates share key prefixes).
	if len(blocked.Clusters()) != len(exhaustive.Clusters()) {
		t.Errorf("clusters: blocked %d vs exhaustive %d",
			len(blocked.Clusters()), len(exhaustive.Clusters()))
	}
}

func TestAlignAttributes(t *testing.T) {
	a := []model.Record{
		{"name": model.String("Warfarin"), "gene": model.String("TP53")},
		{"name": model.String("Ibuprofen"), "gene": model.String("PTGS2")},
		{"name": model.String("Methotrexate"), "gene": model.String("DHFR")},
	}
	b := []model.Record{
		{"chemical": model.String("warfarin"), "target": model.String("TP53"), "country": model.String("US")},
		{"chemical": model.String("ibuprofen"), "target": model.String("PTGS2"), "country": model.String("DE")},
	}
	al := AlignAttributes(a, b, 0.3)
	if al.Pairs["name"] != "chemical" {
		t.Errorf("name aligned to %q", al.Pairs["name"])
	}
	if al.Pairs["gene"] != "target" {
		t.Errorf("gene aligned to %q", al.Pairs["gene"])
	}
	if _, ok := al.Pairs["country"]; ok {
		t.Error("unmatched B attribute must not appear as A key")
	}
	if al.Scores["name"] <= 0 {
		t.Error("scores must be recorded")
	}
	// Below threshold nothing aligns.
	if got := AlignAttributes(a, b, 0.99); len(got.Pairs) != 1 {
		// target/gene overlap is 2/3 ≈ 0.67; name/chemical = 2/3.
		if len(got.Pairs) != 0 {
			t.Errorf("high threshold alignment = %v", got.Pairs)
		}
	}
}

func TestAlignGreedyOneToOne(t *testing.T) {
	// Two A attributes match the same B attribute: only the better one wins.
	a := []model.Record{
		{"n1": model.String("x"), "n2": model.String("x")},
		{"n1": model.String("y"), "n2": model.String("z")},
	}
	b := []model.Record{
		{"m": model.String("x")},
		{"m": model.String("y")},
	}
	al := AlignAttributes(a, b, 0.1)
	if len(al.Pairs) != 1 {
		t.Errorf("one-to-one violated: %v", al.Pairs)
	}
	if al.Pairs["n1"] != "m" {
		t.Errorf("greedy winner = %v", al.Pairs)
	}
}

func TestPropertySimilaritiesBounded(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 100 {
			a = a[:100]
		}
		if len(b) > 100 {
			b = b[:100]
		}
		for _, s := range []float64{StringSim(a, b), TrigramSim(a, b), LevenshteinSim(a, b)} {
			if s < 0 || s > 1 {
				return false
			}
		}
		// Symmetry of StringSim.
		return StringSim(a, b) == StringSim(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdenticalStringsMatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, 3+r.Intn(20))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		s := string(b)
		return StringSim(s, s) == 1 && Levenshtein(s, s) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalCheaperThanRepeatedBatch(t *testing.T) {
	// Simulate sources arriving one at a time: incremental resolves each
	// arrival once; the baseline re-runs batch ER over everything so far.
	// The experiment's claim (E-FS1) is that incremental does strictly
	// less comparison work.
	mkSource := func(src int) []*model.Entity {
		var out []*model.Entity
		for i := 0; i < 30; i++ {
			out = append(out, ent(model.EntityID(src*1000+i), fmt.Sprintf("src%d", src),
				map[string]string{"name": fmt.Sprintf("entity number %04d", i)}))
		}
		return out
	}
	inc := NewResolver(Config{})
	incWork := 0
	batchWork := 0
	var all []*model.Entity
	for s := 0; s < 5; s++ {
		src := mkSource(s)
		inc.AddAll(src)
		incWork = inc.Comparisons
		all = append(all, src...)
		b, _ := ResolveBatch(all, Config{})
		batchWork += b.Comparisons
	}
	if incWork >= batchWork {
		t.Errorf("incremental %d comparisons vs cumulative batch %d", incWork, batchWork)
	}
	// Both must find the same clusters in the end.
	b, _ := ResolveBatch(all, Config{})
	if len(inc.Clusters()) != len(b.Clusters()) {
		t.Errorf("cluster count diverges: inc=%d batch=%d", len(inc.Clusters()), len(b.Clusters()))
	}
}
