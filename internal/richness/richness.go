// Package richness implements the paper's FS.2: a formalism to "express
// and capture the interconnectedness in order to assess and measure the
// richness of each data source based on the connectivity and density".
//
// Following the paper's pointers, the formalism combines information
// content (entropy of attribute values) with graph-theoretic measures
// (degree, density, connectivity of the source's subgraph). The resulting
// score is the weight the fusion layer uses when conflicting sources must
// be ranked (FS.9: "assess the richness or validity of discovered entities
// based on the degree of richness of each source").
package richness

import (
	"math"
	"sort"

	"scdb/internal/graph"
	"scdb/internal/model"
)

// Metrics quantifies one source's richness.
type Metrics struct {
	Source string
	// Entities and Edges count the source's contribution to the relation
	// layer (edges keep their source tag across entity merges).
	Entities int
	Edges    int
	// AvgDegree is Edges/Entities.
	AvgDegree float64
	// Density is the edge density of the source subgraph: Edges/(n*(n-1)).
	Density float64
	// DistinctPredicates counts the distinct relation labels the source
	// uses — a proxy for schema richness.
	DistinctPredicates int
	// FillRate is the fraction of non-null attribute cells across the
	// source's entities, measured against the source's union schema.
	FillRate float64
	// ValueEntropy is the mean normalized Shannon entropy of attribute
	// value distributions: the information-content measure. 0 means every
	// value identical; 1 means all values distinct.
	ValueEntropy float64
	// Connectivity is the fraction of the source's entities inside its
	// largest weakly connected component.
	Connectivity float64
	// Score is the combined richness in [0,1]; see Score.
	Score float64
}

// Measure computes the metrics of one source over the graph.
func Measure(g *graph.Graph, source string) Metrics {
	m := Metrics{Source: source}

	// Attribute entities to the source by the keys it registered: this
	// attribution survives entity-resolution merges (a record swallowed
	// into another source's entity still counts for its origin source).
	ids := g.SourceEntities(source)
	attrs := map[string]bool{}
	valueCounts := map[string]map[uint64]int{} // attr → value hash → count
	valueTotals := map[string]int{}
	for _, id := range ids {
		e, ok := g.Entity(id)
		if !ok {
			continue
		}
		for k, v := range e.Attrs {
			attrs[k] = true
			if v.IsNull() {
				continue
			}
			cm, ok := valueCounts[k]
			if !ok {
				cm = map[uint64]int{}
				valueCounts[k] = cm
			}
			cm[v.Hash()]++
			valueTotals[k]++
		}
	}
	m.Entities = len(ids)

	preds := map[string]bool{}
	adj := map[model.EntityID][]model.EntityID{}
	g.ForEachEdge(func(e graph.Edge) bool {
		if e.Source != source {
			return true
		}
		m.Edges++
		preds[e.Predicate] = true
		if to, ok := e.To.AsRef(); ok {
			adj[e.From] = append(adj[e.From], to)
			adj[to] = append(adj[to], e.From)
		}
		return true
	})
	m.DistinctPredicates = len(preds)

	if m.Entities > 0 {
		m.AvgDegree = float64(m.Edges) / float64(m.Entities)
		if m.Entities > 1 {
			m.Density = float64(m.Edges) / float64(m.Entities*(m.Entities-1))
		}
		// Fill rate against the union schema.
		filled := 0
		for _, n := range valueTotals {
			filled += n
		}
		if len(attrs) > 0 {
			m.FillRate = float64(filled) / float64(len(attrs)*m.Entities)
		}
		m.ValueEntropy = meanNormalizedEntropy(valueCounts, valueTotals)
		m.Connectivity = largestComponentFraction(ids, adj)
	}
	m.Score = Score(m)
	return m
}

// MeasureAll measures every source that registered entities or edges,
// sorted by descending score.
func MeasureAll(g *graph.Graph) []Metrics {
	sources := g.Sources()
	out := make([]Metrics, 0, len(sources))
	for _, s := range sources {
		out = append(out, Measure(g, s))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Score combines the metrics into one richness value in [0,1]:
// 0.30·entropy + 0.25·connectivity + 0.25·saturating(avg degree) +
// 0.20·fill rate. The saturation deg/(1+deg) keeps unbounded degree from
// dominating, and the weights favour information content per the paper's
// lead ("information content and capacity are a common measure").
func Score(m Metrics) float64 {
	if m.Entities == 0 {
		return 0
	}
	degSat := m.AvgDegree / (1 + m.AvgDegree)
	s := 0.30*m.ValueEntropy + 0.25*m.Connectivity + 0.25*degSat + 0.20*m.FillRate
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// meanNormalizedEntropy averages H(attr)/log2(total) over attributes with
// at least two observed values.
func meanNormalizedEntropy(counts map[string]map[uint64]int, totals map[string]int) float64 {
	sum, n := 0.0, 0
	for attr, cm := range counts {
		total := totals[attr]
		if total < 2 {
			continue
		}
		h := 0.0
		for _, c := range cm {
			p := float64(c) / float64(total)
			h -= p * math.Log2(p)
		}
		sum += h / math.Log2(float64(total))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// largestComponentFraction computes the size of the largest weakly
// connected component among ids (restricted to those ids) divided by the
// number of ids.
func largestComponentFraction(ids []model.EntityID, adj map[model.EntityID][]model.EntityID) float64 {
	if len(ids) == 0 {
		return 0
	}
	inSet := make(map[model.EntityID]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}
	seen := map[model.EntityID]bool{}
	best := 0
	for _, id := range ids {
		if seen[id] {
			continue
		}
		size := 0
		stack := []model.EntityID{id}
		seen[id] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, nb := range adj[cur] {
				if inSet[nb] && !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return float64(best) / float64(len(ids))
}
