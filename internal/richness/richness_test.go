package richness

import (
	"fmt"
	"math"
	"testing"

	"scdb/internal/graph"
	"scdb/internal/model"
)

// buildSource adds n entities to g for the named source; degree controls
// how many chain edges are added, fill the fraction of a second attribute
// populated, distinct whether names are distinct or constant.
func buildSource(g *graph.Graph, source string, n int, edges int, fill float64, distinct bool) []model.EntityID {
	ids := make([]model.EntityID, n)
	for i := 0; i < n; i++ {
		name := "same"
		if distinct {
			name = fmt.Sprintf("name-%04d", i)
		}
		attrs := model.Record{"name": model.String(name)}
		if float64(i) < fill*float64(n) {
			attrs["detail"] = model.String(fmt.Sprintf("detail-%d", i))
		}
		ids[i] = g.AddEntity(&model.Entity{Key: fmt.Sprintf("%s-%d", source, i), Source: source, Attrs: attrs, Confidence: 1})
	}
	for i := 0; i < edges && i+1 < n; i++ {
		g.AddEdge(graph.Edge{From: ids[i], Predicate: "linked", To: model.Ref(ids[i+1]), Source: source, Confidence: 1})
	}
	return ids
}

func TestMeasureBasicCounts(t *testing.T) {
	g := graph.New()
	buildSource(g, "rich", 10, 9, 1.0, true)
	m := Measure(g, "rich")
	if m.Entities != 10 || m.Edges != 9 {
		t.Fatalf("counts = %d entities %d edges", m.Entities, m.Edges)
	}
	if m.DistinctPredicates != 1 {
		t.Errorf("DistinctPredicates = %d", m.DistinctPredicates)
	}
	if math.Abs(m.AvgDegree-0.9) > 1e-12 {
		t.Errorf("AvgDegree = %v", m.AvgDegree)
	}
	if m.FillRate != 1.0 {
		t.Errorf("FillRate = %v", m.FillRate)
	}
	if m.Connectivity != 1.0 {
		t.Errorf("chain must be one component: %v", m.Connectivity)
	}
	if m.ValueEntropy <= 0.9 {
		t.Errorf("distinct values must have high entropy: %v", m.ValueEntropy)
	}
	if m.Score <= 0 || m.Score > 1 {
		t.Errorf("Score = %v", m.Score)
	}
}

func TestMeasureEmptySource(t *testing.T) {
	g := graph.New()
	m := Measure(g, "nothing")
	if m.Entities != 0 || m.Score != 0 {
		t.Errorf("empty source metrics = %+v", m)
	}
}

func TestRicherSourceScoresHigher(t *testing.T) {
	g := graph.New()
	// Rich: distinct values, full attributes, connected.
	buildSource(g, "rich", 50, 49, 1.0, true)
	// Poor: constant values, sparse attributes, no edges.
	buildSource(g, "poor", 50, 0, 0.1, false)
	rich := Measure(g, "rich")
	poor := Measure(g, "poor")
	if rich.Score <= poor.Score {
		t.Errorf("rich %.3f must outscore poor %.3f", rich.Score, poor.Score)
	}
	if poor.Connectivity > 0.05 {
		t.Errorf("edgeless source connectivity = %v", poor.Connectivity)
	}
}

func TestMeasureAllSorted(t *testing.T) {
	g := graph.New()
	buildSource(g, "a", 20, 19, 1.0, true)
	buildSource(g, "b", 20, 0, 0.2, false)
	buildSource(g, "c", 20, 10, 0.5, true)
	all := MeasureAll(g)
	if len(all) != 3 {
		t.Fatalf("MeasureAll = %d sources", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Errorf("not sorted by score: %v then %v", all[i-1].Score, all[i].Score)
		}
	}
	if all[0].Source != "a" {
		t.Errorf("richest = %q, want a", all[0].Source)
	}
}

func TestConnectivityFractional(t *testing.T) {
	g := graph.New()
	ids := buildSource(g, "s", 10, 0, 1, true)
	// Connect only the first 4 entities.
	for i := 0; i < 3; i++ {
		g.AddEdge(graph.Edge{From: ids[i], Predicate: "p", To: model.Ref(ids[i+1]), Source: "s"})
	}
	m := Measure(g, "s")
	if math.Abs(m.Connectivity-0.4) > 1e-12 {
		t.Errorf("Connectivity = %v, want 0.4", m.Connectivity)
	}
}

func TestEntropyConstantColumnIsZero(t *testing.T) {
	g := graph.New()
	buildSource(g, "s", 20, 0, 0, false) // only constant "name"
	m := Measure(g, "s")
	if m.ValueEntropy != 0 {
		t.Errorf("constant column entropy = %v", m.ValueEntropy)
	}
}

func TestEdgesCountedBySourceTagAcrossMerges(t *testing.T) {
	g := graph.New()
	a := buildSource(g, "a", 3, 2, 1, true)
	b := buildSource(g, "b", 3, 2, 1, true)
	// Merge one of b's entities into a's: edge source tags survive.
	g.Merge(a[0], b[0])
	m := Measure(g, "b")
	if m.Edges != 2 {
		t.Errorf("source-b edges after merge = %d, want 2", m.Edges)
	}
}

func TestScoreBounds(t *testing.T) {
	// Degenerate inputs must stay in [0,1].
	for _, m := range []Metrics{
		{Entities: 1},
		{Entities: 5, AvgDegree: 1000, ValueEntropy: 1, Connectivity: 1, FillRate: 1},
	} {
		s := Score(m)
		if s < 0 || s > 1 {
			t.Errorf("Score(%+v) = %v", m, s)
		}
	}
	if Score(Metrics{}) != 0 {
		t.Error("empty metrics score must be 0")
	}
}
