package uncertain

import (
	"fmt"
	"math/rand"

	"scdb/internal/model"
)

// Space is the discrete probability space P = (W, P): a set of independent
// discrete variables whose joint assignments are the possible worlds W and
// whose per-alternative probabilities define the probability model P, with
// P(I_i) >= 0 and Σ P(I_i) = 1 by construction.
type Space struct {
	vars  []Var
	probs map[Var][]float64
	vals  map[Var][]model.Value // candidate valuations for null-filling vars
}

// NewSpace creates an empty probability space. With no variables there is
// exactly one world (the certain database).
func NewSpace() *Space {
	return &Space{probs: make(map[Var][]float64), vals: make(map[Var][]model.Value)}
}

// AddBool declares a Bernoulli variable: alternative 1 with probability
// pTrue, alternative 0 otherwise. Eq(v, 1) is "the event happened".
func (s *Space) AddBool(v Var, pTrue float64) error {
	return s.AddChoice(v, []float64{1 - pTrue, pTrue})
}

// AddChoice declares a discrete variable with one alternative per given
// probability. Probabilities must be non-negative and sum to 1 (within
// 1e-9).
func (s *Space) AddChoice(v Var, probs []float64) error {
	if _, dup := s.probs[v]; dup {
		return fmt.Errorf("uncertain: variable %q already declared", v)
	}
	if len(probs) == 0 {
		return fmt.Errorf("uncertain: variable %q has no alternatives", v)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			return fmt.Errorf("uncertain: variable %q has negative probability", v)
		}
		sum += p
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("uncertain: variable %q probabilities sum to %g, want 1", v, sum)
	}
	s.vars = append(s.vars, v)
	s.probs[v] = append([]float64(nil), probs...)
	return nil
}

// AddValueChoice declares a variable that values a marked null: alternative
// i stands for the null taking value vals[i]. This is the valuation v(t_i)
// of the extended c-table semantics.
func (s *Space) AddValueChoice(v Var, vals []model.Value, probs []float64) error {
	if len(vals) != len(probs) {
		return fmt.Errorf("uncertain: variable %q: %d values but %d probabilities", v, len(vals), len(probs))
	}
	if err := s.AddChoice(v, probs); err != nil {
		return err
	}
	s.vals[v] = append([]model.Value(nil), vals...)
	return nil
}

// Vars returns the declared variables in declaration order.
func (s *Space) Vars() []Var { return s.vars }

// Domain returns the number of alternatives of the variable.
func (s *Space) Domain(v Var) int { return len(s.probs[v]) }

// ValueOf returns the value alternative alt stands for, when v is a
// null-valuation variable; otherwise it returns null.
func (s *Space) ValueOf(v Var, alt int) model.Value {
	vals, ok := s.vals[v]
	if !ok || alt < 0 || alt >= len(vals) {
		return model.Null()
	}
	return vals[alt]
}

// NumWorlds returns the number of possible worlds (the product of domain
// sizes). It saturates at MaxInt to avoid overflow on large spaces.
func (s *Space) NumWorlds() int {
	n := 1
	for _, v := range s.vars {
		d := len(s.probs[v])
		if n > (1<<62)/d {
			return 1 << 62
		}
		n *= d
	}
	return n
}

// EnumWorlds enumerates every possible world with its probability. The
// callback returns false to stop. Worlds with probability 0 are skipped.
// The assignment passed to the callback is reused; copy it if retained.
func (s *Space) EnumWorlds(fn func(Assignment, float64) bool) {
	a := make(Assignment, len(s.vars))
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == len(s.vars) {
			return fn(a, p)
		}
		v := s.vars[i]
		for alt, ap := range s.probs[v] {
			if ap == 0 {
				continue
			}
			a[v] = alt
			if !rec(i+1, p*ap) {
				return false
			}
		}
		return true
	}
	rec(0, 1)
}

// SampleWorld draws one world from the joint distribution.
func (s *Space) SampleWorld(r *rand.Rand) Assignment {
	a := make(Assignment, len(s.vars))
	for _, v := range s.vars {
		x := r.Float64()
		acc := 0.0
		alt := 0
		for i, p := range s.probs[v] {
			acc += p
			if x < acc {
				alt = i
				break
			}
			alt = i
		}
		a[v] = alt
	}
	return a
}

// WorldProb returns the probability of the given (total) assignment.
func (s *Space) WorldProb(a Assignment) float64 {
	p := 1.0
	for _, v := range s.vars {
		alt := a[v]
		if alt < 0 || alt >= len(s.probs[v]) {
			return 0
		}
		p *= s.probs[v][alt]
	}
	return p
}

// CondProb returns the exact probability that the condition holds, by
// enumeration. For spaces too large to enumerate use CondProbSampled.
func (s *Space) CondProb(c *Cond) float64 {
	total := 0.0
	s.EnumWorlds(func(a Assignment, p float64) bool {
		if c.Eval(a) {
			total += p
		}
		return true
	})
	return total
}

// CondProbSampled estimates the probability that the condition holds from n
// Monte-Carlo samples drawn with the given seed.
func (s *Space) CondProbSampled(c *Cond, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	hit := 0
	for i := 0; i < n; i++ {
		if c.Eval(s.SampleWorld(r)) {
			hit++
		}
	}
	return float64(hit) / float64(n)
}
