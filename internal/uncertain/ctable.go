package uncertain

import (
	"fmt"
	"math/rand"
	"sort"

	"scdb/internal/model"
)

// CTuple is one conditioned tuple t_i with condition c_i: the tuple exists
// in exactly the worlds where the condition holds. Attributes may hold
// marked nulls: NullVars maps an attribute name to the variable whose
// chosen alternative values it in each world (the valuation v(t_i)).
type CTuple struct {
	Rec      model.Record
	Cond     *Cond
	NullVars map[string]Var
}

// instantiate produces the tuple's complete record in the given world, or
// nil if the condition fails there.
func (t CTuple) instantiate(s *Space, a Assignment) model.Record {
	if !t.Cond.Eval(a) {
		return nil
	}
	if len(t.NullVars) == 0 {
		return t.Rec
	}
	rec := t.Rec.Clone()
	for attr, v := range t.NullVars {
		rec[attr] = s.ValueOf(v, a[v])
	}
	return rec
}

// CTable is a conditional table: a set of conditioned tuples over one
// probability space. It is the expressive representational model the paper
// cites [10] and asks to extend (FS.10).
type CTable struct {
	Name   string
	Space  *Space
	Tuples []CTuple
}

// NewCTable creates an empty c-table with its own probability space.
func NewCTable(name string) *CTable {
	return &CTable{Name: name, Space: NewSpace()}
}

// AddCertain appends a tuple that exists in every world.
func (c *CTable) AddCertain(rec model.Record) {
	c.Tuples = append(c.Tuples, CTuple{Rec: rec, Cond: True()})
}

// AddConditioned appends a tuple guarded by an explicit condition over
// already-declared variables.
func (c *CTable) AddConditioned(rec model.Record, cond *Cond) {
	c.Tuples = append(c.Tuples, CTuple{Rec: rec, Cond: cond})
}

// AddProbabilistic appends a tuple that exists with probability p,
// independently of everything else: the "fuzzy/probabilistic tuple" path
// that lifts a soft-source confidence into the unified formalism (FS.3).
// It declares a fresh Bernoulli variable and returns it.
func (c *CTable) AddProbabilistic(rec model.Record, p float64) (Var, error) {
	v := Var(fmt.Sprintf("t%d", len(c.Tuples)))
	if err := c.Space.AddBool(v, p); err != nil {
		return "", err
	}
	c.Tuples = append(c.Tuples, CTuple{Rec: rec, Cond: Eq(v, 1)})
	return v, nil
}

// AddWithNull appends a certain tuple in which attribute attr is a marked
// null with the given candidate values and probabilities. It returns the
// null's valuation variable. A uniform distribution expresses pure
// incompleteness; a skewed one expresses a statistical prior.
func (c *CTable) AddWithNull(rec model.Record, attr string, cands []model.Value, probs []float64) (Var, error) {
	v := Var(fmt.Sprintf("n%d_%s", len(c.Tuples), attr))
	if err := c.Space.AddValueChoice(v, cands, probs); err != nil {
		return "", err
	}
	rec = rec.Clone()
	rec[attr] = model.Null()
	c.Tuples = append(c.Tuples, CTuple{Rec: rec, Cond: True(), NullVars: map[string]Var{attr: v}})
	return v, nil
}

// Instantiate returns the complete database instance I for one world.
func (c *CTable) Instantiate(a Assignment) []model.Record {
	var out []model.Record
	for _, t := range c.Tuples {
		if rec := t.instantiate(c.Space, a); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Select returns a new c-table containing the tuples whose predicate is not
// definitely False on the static (null-preserving) record, with conditions
// carried over. Predicates over marked nulls evaluate to Unknown under
// three-valued logic and are therefore retained — the sound pruning; exact
// per-world evaluation happens in Answers/QueryProb.
func (c *CTable) Select(pred func(model.Record) model.Truth) *CTable {
	out := &CTable{Name: c.Name + "/σ", Space: c.Space}
	for _, t := range c.Tuples {
		if pred(t.Rec) != model.False {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns a new c-table keeping only the given attributes. Marked
// nulls on projected-away attributes are dropped; those on kept attributes
// survive.
func (c *CTable) Project(attrs ...string) *CTable {
	out := &CTable{Name: c.Name + "/π", Space: c.Space}
	for _, t := range c.Tuples {
		rec := model.Record{}
		var nv map[string]Var
		for _, a := range attrs {
			rec[a] = t.Rec.Get(a)
			if v, ok := t.NullVars[a]; ok {
				if nv == nil {
					nv = map[string]Var{}
				}
				nv[a] = v
			}
		}
		out.Tuples = append(out.Tuples, CTuple{Rec: rec, Cond: t.Cond, NullVars: nv})
	}
	return out
}

// Join completes the c-table algebra: tuples of c and other whose static
// records satisfy the predicate pair up, with conditions conjoined (the
// pair exists exactly in the worlds where both operands exist). Both
// tables must share one probability space. merge combines the two records
// (nil uses a prefix-disambiguated union). Marked nulls carry over with
// their attribute names; on collision the left side wins.
func (c *CTable) Join(other *CTable, on func(a, b model.Record) model.Truth, merge func(a, b model.Record) model.Record) (*CTable, error) {
	if c.Space != other.Space {
		return nil, fmt.Errorf("uncertain: join requires a shared probability space")
	}
	if merge == nil {
		merge = func(a, b model.Record) model.Record {
			out := a.Clone()
			for k, v := range b {
				if _, taken := out[k]; taken {
					out["right."+k] = v
				} else {
					out[k] = v
				}
			}
			return out
		}
	}
	out := &CTable{Name: c.Name + "⋈" + other.Name, Space: c.Space}
	for _, ta := range c.Tuples {
		for _, tb := range other.Tuples {
			if on(ta.Rec, tb.Rec) == model.False {
				continue
			}
			nt := CTuple{Rec: merge(ta.Rec, tb.Rec), Cond: And(ta.Cond, tb.Cond)}
			if len(ta.NullVars)+len(tb.NullVars) > 0 {
				nt.NullVars = map[string]Var{}
				for k, v := range tb.NullVars {
					nt.NullVars[k] = v
				}
				for k, v := range ta.NullVars {
					nt.NullVars[k] = v
				}
			}
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// TupleProb returns the exact probability that a tuple equal to rec appears
// in the instance: Σ P(I_i) over worlds I_i containing rec.
func (c *CTable) TupleProb(rec model.Record) float64 {
	total := 0.0
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		for _, t := range c.Tuples {
			inst := t.instantiate(c.Space, a)
			if inst == nil {
				continue
			}
			if recordsEqual(inst, rec) {
				total += p
				break
			}
		}
		return true
	})
	return total
}

// QueryProb returns the exact probability that the boolean query holds,
// evaluated per world on the complete instance.
func (c *CTable) QueryProb(q func([]model.Record) bool) float64 {
	total := 0.0
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		if q(c.Instantiate(a)) {
			total += p
		}
		return true
	})
	return total
}

// QueryProbGiven returns the conditional probability P(q | evidence): the
// probability of the query among the worlds where the evidence condition
// holds — the Bayesian update that lets discovered facts (a resolved null,
// a confirmed tuple) sharpen every other answer. It errors when the
// evidence has probability zero.
func (c *CTable) QueryProbGiven(q func([]model.Record) bool, evidence *Cond) (float64, error) {
	num, den := 0.0, 0.0
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		if !evidence.Eval(a) {
			return true
		}
		den += p
		if q(c.Instantiate(a)) {
			num += p
		}
		return true
	})
	if den == 0 {
		return 0, fmt.Errorf("uncertain: conditioning on zero-probability evidence %s", evidence)
	}
	return num / den, nil
}

// MarginalGiven returns P(v = alt | evidence) over the space.
func (s *Space) MarginalGiven(v Var, alt int, evidence *Cond) (float64, error) {
	num, den := 0.0, 0.0
	s.EnumWorlds(func(a Assignment, p float64) bool {
		if !evidence.Eval(a) {
			return true
		}
		den += p
		if a[v] == alt {
			num += p
		}
		return true
	})
	if den == 0 {
		return 0, fmt.Errorf("uncertain: conditioning on zero-probability evidence %s", evidence)
	}
	return num / den, nil
}

// QueryProbSampled estimates QueryProb from n Monte-Carlo worlds.
func (c *CTable) QueryProbSampled(q func([]model.Record) bool, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	hit := 0
	for i := 0; i < n; i++ {
		if q(c.Instantiate(c.Space.SampleWorld(r))) {
			hit++
		}
	}
	return float64(hit) / float64(n)
}

// Certain reports whether the boolean query holds in every world — the
// certain-answer semantics certain(Q, D) = ∩ Q(D_i).
func (c *CTable) Certain(q func([]model.Record) bool) bool {
	certain := true
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		if !q(c.Instantiate(a)) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// Possible reports whether the boolean query holds in at least one world.
func (c *CTable) Possible(q func([]model.Record) bool) bool {
	possible := false
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		if q(c.Instantiate(a)) {
			possible = true
			return false
		}
		return true
	})
	return possible
}

// Answer is one distinct query answer with its total probability.
type Answer struct {
	Value model.Value
	Prob  float64
}

// Answers evaluates a value-producing query in every world and aggregates
// the probability of each distinct answer. Answers are sorted by
// descending probability, then by value order, so output is deterministic.
func (c *CTable) Answers(q func([]model.Record) []model.Value) []Answer {
	type acc struct {
		v model.Value
		p float64
	}
	byHash := map[uint64]*acc{}
	c.Space.EnumWorlds(func(a Assignment, p float64) bool {
		seen := map[uint64]bool{}
		for _, v := range q(c.Instantiate(a)) {
			h := v.Hash()
			if seen[h] {
				continue
			}
			seen[h] = true
			if e, ok := byHash[h]; ok {
				e.p += p
			} else {
				byHash[h] = &acc{v: v, p: p}
			}
		}
		return true
	})
	out := make([]Answer, 0, len(byHash))
	for _, e := range byHash {
		out = append(out, Answer{Value: e.v, Prob: e.p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return model.Less(out[i].Value, out[j].Value)
	})
	return out
}

// CertainAnswers returns the answers with probability 1 (within 1e-9) —
// true in every world.
func (c *CTable) CertainAnswers(q func([]model.Record) []model.Value) []model.Value {
	var out []model.Value
	for _, a := range c.Answers(q) {
		if a.Prob >= 1-1e-9 {
			out = append(out, a.Value)
		}
	}
	return out
}

func recordsEqual(a, b model.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !model.Equal(v, b[k]) {
			return false
		}
	}
	return true
}
