// Package uncertain implements the representation and query semantics for
// uncertain and incomplete data (paper Section 4.2, FS.3 and FS.10): a
// conditional-table (c-table) model in which each tuple carries a boolean
// condition over discrete random variables, a discrete probability space of
// possible worlds P = (W, P), marked nulls whose valuation v(t_i) is itself
// a random variable, and query answering that classifies answers as certain
// (true in every world), possible (true in some world), or probabilistic
// (weighted by the total probability of the worlds where they hold).
//
// The package unifies the "isolated forms of uncertainty" FS.3 complains
// about: probabilistic tuples (a condition with a weighted variable), fuzzy
// tuples (a confidence degree lifted to a Bernoulli variable), and
// incompleteness (marked nulls with candidate valuations under the open- or
// closed-world assumption).
package uncertain

import (
	"fmt"
	"sort"
	"strings"
)

// Var names a discrete random variable in the probability space.
type Var string

// Assignment maps each variable to the index of its chosen alternative; a
// total assignment identifies one possible world.
type Assignment map[Var]int

// condOp enumerates condition node kinds.
type condOp uint8

const (
	opTrue condOp = iota
	opEq
	opAnd
	opOr
	opNot
)

// Cond is a boolean condition over variables — the c_i attached to tuple
// t_i in the c-table formalism. The zero value is not valid; use the
// constructors.
type Cond struct {
	op   condOp
	v    Var
	val  int
	kids []*Cond
}

// True returns the always-true condition (tuples certain to exist).
func True() *Cond { return &Cond{op: opTrue} }

// Eq returns the atomic condition v = val.
func Eq(v Var, val int) *Cond { return &Cond{op: opEq, v: v, val: val} }

// And returns the conjunction of the given conditions.
func And(kids ...*Cond) *Cond {
	if len(kids) == 0 {
		return True()
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &Cond{op: opAnd, kids: kids}
}

// Or returns the disjunction of the given conditions.
func Or(kids ...*Cond) *Cond {
	if len(kids) == 0 {
		return True()
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &Cond{op: opOr, kids: kids}
}

// Not returns the negation of the condition.
func Not(c *Cond) *Cond { return &Cond{op: opNot, kids: []*Cond{c}} }

// Eval evaluates the condition under a (total) assignment. Variables absent
// from the assignment default to alternative 0.
func (c *Cond) Eval(a Assignment) bool {
	switch c.op {
	case opTrue:
		return true
	case opEq:
		return a[c.v] == c.val
	case opAnd:
		for _, k := range c.kids {
			if !k.Eval(a) {
				return false
			}
		}
		return true
	case opOr:
		for _, k := range c.kids {
			if k.Eval(a) {
				return true
			}
		}
		return false
	case opNot:
		return !c.kids[0].Eval(a)
	}
	return false
}

// Vars returns the sorted set of variables the condition mentions.
func (c *Cond) Vars() []Var {
	set := map[Var]bool{}
	c.collectVars(set)
	vars := make([]Var, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

func (c *Cond) collectVars(set map[Var]bool) {
	if c.op == opEq {
		set[c.v] = true
	}
	for _, k := range c.kids {
		k.collectVars(set)
	}
}

// String renders the condition for debugging and EXPLAIN output.
func (c *Cond) String() string {
	switch c.op {
	case opTrue:
		return "⊤"
	case opEq:
		return fmt.Sprintf("%s=%d", c.v, c.val)
	case opAnd, opOr:
		sep := " ∧ "
		if c.op == opOr {
			sep = " ∨ "
		}
		parts := make([]string, len(c.kids))
		for i, k := range c.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	case opNot:
		return "¬" + c.kids[0].String()
	}
	return "?"
}
