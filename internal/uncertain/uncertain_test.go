package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scdb/internal/model"
)

func TestCondEvalAndString(t *testing.T) {
	a := Assignment{"x": 1, "y": 0}
	cases := []struct {
		c    *Cond
		want bool
	}{
		{True(), true},
		{Eq("x", 1), true},
		{Eq("x", 0), false},
		{And(Eq("x", 1), Eq("y", 0)), true},
		{And(Eq("x", 1), Eq("y", 1)), false},
		{Or(Eq("x", 0), Eq("y", 0)), true},
		{Or(Eq("x", 0), Eq("y", 1)), false},
		{Not(Eq("x", 1)), false},
		{Not(Not(Eq("x", 1))), true},
		{And(), true},
		{Or(), true},
	}
	for _, c := range cases {
		if got := c.c.Eval(a); got != c.want {
			t.Errorf("%s under %v = %v, want %v", c.c, a, got, c.want)
		}
	}
	if s := And(Eq("x", 1), Not(Eq("y", 2))).String(); s != "(x=1 ∧ ¬y=2)" {
		t.Errorf("String = %q", s)
	}
	vars := Or(Eq("b", 1), And(Eq("a", 0), Eq("c", 2))).Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "c" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestSpaceDeclarations(t *testing.T) {
	s := NewSpace()
	if err := s.AddBool("x", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddBool("x", 0.5); err == nil {
		t.Error("duplicate variable must fail")
	}
	if err := s.AddChoice("bad", nil); err == nil {
		t.Error("empty domain must fail")
	}
	if err := s.AddChoice("bad2", []float64{0.5, 0.4}); err == nil {
		t.Error("probabilities must sum to 1")
	}
	if err := s.AddChoice("bad3", []float64{1.5, -0.5}); err == nil {
		t.Error("negative probability must fail")
	}
	if err := s.AddChoice("y", []float64{0.2, 0.3, 0.5}); err != nil {
		t.Fatal(err)
	}
	if s.NumWorlds() != 6 {
		t.Errorf("NumWorlds = %d", s.NumWorlds())
	}
	if s.Domain("y") != 3 || s.Domain("x") != 2 {
		t.Error("Domain broken")
	}
	if len(s.Vars()) != 2 {
		t.Errorf("Vars = %v", s.Vars())
	}
}

func TestEnumWorldsSumsToOne(t *testing.T) {
	s := NewSpace()
	s.AddBool("a", 0.25)
	s.AddChoice("b", []float64{0.1, 0.9})
	s.AddChoice("c", []float64{0.5, 0.25, 0.25})
	total := 0.0
	worlds := 0
	s.EnumWorlds(func(a Assignment, p float64) bool {
		total += p
		worlds++
		return true
	})
	if worlds != 12 {
		t.Errorf("worlds = %d", worlds)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %g", total)
	}
}

func TestEnumWorldsSkipsZeroProb(t *testing.T) {
	s := NewSpace()
	s.AddChoice("a", []float64{0, 1})
	n := 0
	s.EnumWorlds(func(a Assignment, p float64) bool {
		n++
		if a["a"] != 1 {
			t.Error("zero-probability alternative enumerated")
		}
		return true
	})
	if n != 1 {
		t.Errorf("worlds = %d", n)
	}
}

func TestCondProbExactAndSampled(t *testing.T) {
	s := NewSpace()
	s.AddBool("x", 0.3)
	s.AddBool("y", 0.5)
	// P(x ∧ y) = 0.15, P(x ∨ y) = 0.65
	if p := s.CondProb(And(Eq("x", 1), Eq("y", 1))); math.Abs(p-0.15) > 1e-12 {
		t.Errorf("P(x∧y) = %g", p)
	}
	if p := s.CondProb(Or(Eq("x", 1), Eq("y", 1))); math.Abs(p-0.65) > 1e-12 {
		t.Errorf("P(x∨y) = %g", p)
	}
	if p := s.CondProbSampled(Or(Eq("x", 1), Eq("y", 1)), 20000, 1); math.Abs(p-0.65) > 0.02 {
		t.Errorf("sampled P = %g, want ≈0.65", p)
	}
}

func TestWorldProb(t *testing.T) {
	s := NewSpace()
	s.AddBool("x", 0.3)
	s.AddChoice("y", []float64{0.2, 0.8})
	if p := s.WorldProb(Assignment{"x": 1, "y": 0}); math.Abs(p-0.06) > 1e-12 {
		t.Errorf("WorldProb = %g", p)
	}
	if p := s.WorldProb(Assignment{"x": 5, "y": 0}); p != 0 {
		t.Errorf("out-of-domain assignment prob = %g", p)
	}
}

func TestCTableCertainAndProbabilistic(t *testing.T) {
	c := NewCTable("drugs")
	c.AddCertain(model.Record{"name": model.String("Warfarin")})
	if _, err := c.AddProbabilistic(model.Record{"name": model.String("Maybe")}, 0.4); err != nil {
		t.Fatal(err)
	}
	if p := c.TupleProb(model.Record{"name": model.String("Warfarin")}); p != 1 {
		t.Errorf("certain tuple prob = %g", p)
	}
	if p := c.TupleProb(model.Record{"name": model.String("Maybe")}); math.Abs(p-0.4) > 1e-12 {
		t.Errorf("probabilistic tuple prob = %g", p)
	}
	if p := c.TupleProb(model.Record{"name": model.String("Absent")}); p != 0 {
		t.Errorf("absent tuple prob = %g", p)
	}
}

func TestCTableMarkedNulls(t *testing.T) {
	// An incomplete record: dosage is unknown, 3 candidate completions.
	c := NewCTable("trials")
	_, err := c.AddWithNull(
		model.Record{"drug": model.String("Warfarin")},
		"dosage",
		[]model.Value{model.Float(3.4), model.Float(5.1), model.Float(6.1)},
		[]float64{0.25, 0.5, 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	// In every world exactly one completion exists.
	if !c.Certain(func(recs []model.Record) bool { return len(recs) == 1 }) {
		t.Error("exactly one tuple per world")
	}
	p := c.QueryProb(func(recs []model.Record) bool {
		f, _ := recs[0]["dosage"].AsFloat()
		return f > 5.0
	})
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("P(dosage > 5.0) = %g, want 0.75", p)
	}
	// The static record keeps the null.
	if !c.Tuples[0].Rec["dosage"].IsNull() {
		t.Error("static record must hold null")
	}
}

func TestCertainPossible(t *testing.T) {
	c := NewCTable("t")
	c.AddCertain(model.Record{"v": model.Int(1)})
	c.AddProbabilistic(model.Record{"v": model.Int(2)}, 0.5)

	has := func(want int64) func([]model.Record) bool {
		return func(recs []model.Record) bool {
			for _, r := range recs {
				if i, _ := r["v"].AsInt(); i == want {
					return true
				}
			}
			return false
		}
	}
	if !c.Certain(has(1)) {
		t.Error("v=1 must be certain")
	}
	if c.Certain(has(2)) {
		t.Error("v=2 must not be certain")
	}
	if !c.Possible(has(2)) {
		t.Error("v=2 must be possible")
	}
	if c.Possible(has(3)) {
		t.Error("v=3 must be impossible")
	}
}

func TestSelectThreeValued(t *testing.T) {
	c := NewCTable("t")
	c.AddCertain(model.Record{"v": model.Int(10)})
	c.AddCertain(model.Record{"v": model.Int(1)})
	c.AddWithNull(model.Record{}, "v",
		[]model.Value{model.Int(0), model.Int(20)}, []float64{0.5, 0.5})

	sel := c.Select(func(r model.Record) model.Truth {
		v := r.Get("v")
		if v.IsNull() {
			return model.Unknown
		}
		i, _ := v.AsInt()
		return model.TruthOf(i > 5)
	})
	// v=1 is definitely out; v=10 stays; the null tuple stays as Unknown.
	if len(sel.Tuples) != 2 {
		t.Fatalf("selected %d tuples", len(sel.Tuples))
	}
	// The space is shared, so per-world evaluation resolves the Unknown:
	// the null tuple satisfies v > 5 only in the world where it is 20.
	p := sel.QueryProb(func(recs []model.Record) bool {
		n := 0
		for _, r := range recs {
			if i, _ := r["v"].AsInt(); i > 5 {
				n++
			}
		}
		return n == 2
	})
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(both satisfy per world) = %g, want 0.5", p)
	}
}

func TestProject(t *testing.T) {
	c := NewCTable("t")
	c.AddCertain(model.Record{"a": model.Int(1), "b": model.Int(2)})
	c.AddWithNull(model.Record{"a": model.Int(3)}, "b",
		[]model.Value{model.Int(4)}, []float64{1})
	p := c.Project("a")
	if len(p.Tuples) != 2 {
		t.Fatal("projection must keep tuples")
	}
	for _, tp := range p.Tuples {
		if _, ok := tp.Rec["b"]; ok {
			t.Error("projected-away attribute present")
		}
		if len(tp.NullVars) != 0 {
			t.Error("null var on dropped attribute must not survive")
		}
	}
	p2 := c.Project("b")
	if p2.Tuples[1].NullVars["b"] == "" {
		t.Error("null var on kept attribute must survive")
	}
}

func TestAnswersDistribution(t *testing.T) {
	// The Warfarin dosage question as a c-table: one source per world view.
	c := NewCTable("dosage")
	c.AddWithNull(model.Record{"drug": model.String("Warfarin")}, "dose",
		[]model.Value{model.Float(3.4), model.Float(5.1), model.Float(6.1)},
		[]float64{0.3, 0.4, 0.3})
	ans := c.Answers(func(recs []model.Record) []model.Value {
		var out []model.Value
		for _, r := range recs {
			out = append(out, r["dose"])
		}
		return out
	})
	if len(ans) != 3 {
		t.Fatalf("answers = %v", ans)
	}
	if f, _ := ans[0].Value.AsFloat(); f != 5.1 || math.Abs(ans[0].Prob-0.4) > 1e-12 {
		t.Errorf("top answer = %v", ans[0])
	}
	if got := c.CertainAnswers(func(recs []model.Record) []model.Value {
		return []model.Value{recs[0]["drug"]}
	}); len(got) != 1 || !model.Equal(got[0], model.String("Warfarin")) {
		t.Errorf("certain answers = %v", got)
	}
}

func TestCTableJoin(t *testing.T) {
	// Drugs and trials over one space: the joined pair exists only where
	// both operands do.
	drugs := NewCTable("drugs")
	vd, _ := drugs.AddProbabilistic(model.Record{"drug": model.String("Warfarin"), "class": model.String("anticoagulant")}, 0.8)
	trials := &CTable{Name: "trials", Space: drugs.Space}
	trials.AddCertain(model.Record{"drug": model.String("Warfarin"), "dose": model.Float(5.1)})
	trials.AddCertain(model.Record{"drug": model.String("Ibuprofen"), "dose": model.Float(200)})

	on := func(a, b model.Record) model.Truth {
		return model.TruthOf(model.Equal(a.Get("drug"), b.Get("drug")))
	}
	j, err := drugs.Join(trials, on, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Tuples) != 1 {
		t.Fatalf("joined tuples = %d", len(j.Tuples))
	}
	// The join pair carries both attributes and the conjoined condition.
	rec := j.Tuples[0].Rec
	if !model.Equal(rec.Get("class"), model.String("anticoagulant")) ||
		!model.Equal(rec.Get("dose"), model.Float(5.1)) {
		t.Errorf("joined record = %v", rec)
	}
	p := j.TupleProb(rec)
	if math.Abs(p-0.8) > 1e-12 {
		t.Errorf("P(pair) = %g, want 0.8", p)
	}
	_ = vd
	// Mismatched spaces are rejected.
	other := NewCTable("other")
	if _, err := drugs.Join(other, on, nil); err == nil {
		t.Error("join across spaces must fail")
	}
}

func TestCTableJoinAttributeCollision(t *testing.T) {
	a := NewCTable("a")
	a.AddCertain(model.Record{"k": model.Int(1), "v": model.String("left")})
	b := &CTable{Name: "b", Space: a.Space}
	b.AddCertain(model.Record{"k": model.Int(1), "v": model.String("right")})
	j, err := a.Join(b, func(x, y model.Record) model.Truth {
		return model.TruthOf(model.Equal(x.Get("k"), y.Get("k")))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := j.Tuples[0].Rec
	if !model.Equal(rec.Get("v"), model.String("left")) || !model.Equal(rec.Get("right.v"), model.String("right")) {
		t.Errorf("collision handling = %v", rec)
	}
}

func TestConditionalProbability(t *testing.T) {
	// Two independent probabilistic tuples; condition on one being present.
	c := NewCTable("t")
	vx, _ := c.AddProbabilistic(model.Record{"v": model.Int(1)}, 0.3)
	c.AddProbabilistic(model.Record{"v": model.Int(2)}, 0.5)

	both := func(recs []model.Record) bool { return len(recs) == 2 }
	// P(both) = 0.15; P(both | x present) = 0.5.
	p, err := c.QueryProbGiven(both, Eq(vx, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(both | x) = %g, want 0.5", p)
	}
	// Conditioning on a tautology equals the unconditional probability.
	p, _ = c.QueryProbGiven(both, True())
	if math.Abs(p-0.15) > 1e-12 {
		t.Errorf("P(both | ⊤) = %g, want 0.15", p)
	}
	// Zero-probability evidence errors.
	if _, err := c.QueryProbGiven(both, And(Eq(vx, 1), Eq(vx, 0))); err == nil {
		t.Error("contradictory evidence must error")
	}
}

func TestMarginalGiven(t *testing.T) {
	// The Warfarin null sharpens when evidence rules out one completion.
	c := NewCTable("trials")
	v, _ := c.AddWithNull(model.Record{"drug": model.String("Warfarin")}, "dose",
		[]model.Value{model.Float(3.4), model.Float(5.1), model.Float(6.1)},
		[]float64{0.25, 0.5, 0.25})
	// Evidence: the dose is not 3.4 (alternative 0 excluded).
	p, err := c.Space.MarginalGiven(v, 1, Not(Eq(v, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5/0.75) > 1e-12 {
		t.Errorf("P(dose=5.1 | dose≠3.4) = %g, want %g", p, 0.5/0.75)
	}
	if _, err := c.Space.MarginalGiven(v, 1, And(Eq(v, 0), Eq(v, 1))); err == nil {
		t.Error("impossible evidence must error")
	}
}

func TestSampledQueryProbConverges(t *testing.T) {
	c := NewCTable("t")
	for i := 0; i < 8; i++ {
		c.AddProbabilistic(model.Record{"i": model.Int(int64(i))}, 0.5)
	}
	q := func(recs []model.Record) bool { return len(recs) >= 4 }
	exact := c.QueryProb(q)
	sampled := c.QueryProbSampled(q, 20000, 7)
	if math.Abs(exact-sampled) > 0.02 {
		t.Errorf("exact %g vs sampled %g", exact, sampled)
	}
}

func TestPropertyCondProbDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace()
		var vars []Var
		for i := 0; i < 3; i++ {
			v := Var(string(rune('a' + i)))
			s.AddBool(v, r.Float64())
			vars = append(vars, v)
		}
		c1 := Eq(vars[0], 1)
		c2 := Or(Eq(vars[1], 1), Eq(vars[2], 0))
		// P(¬(c1∧c2)) == P(¬c1 ∨ ¬c2)
		lhs := s.CondProb(Not(And(c1, c2)))
		rhs := s.CondProb(Or(Not(c1), Not(c2)))
		if math.Abs(lhs-rhs) > 1e-9 {
			return false
		}
		// Complement law.
		return math.Abs(s.CondProb(c1)+s.CondProb(Not(c1))-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnswersProbsBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCTable("t")
		for i := 0; i < 4; i++ {
			c.AddProbabilistic(model.Record{"v": model.Int(int64(r.Intn(3)))}, r.Float64())
		}
		ans := c.Answers(func(recs []model.Record) []model.Value {
			var out []model.Value
			for _, rec := range recs {
				out = append(out, rec["v"])
			}
			return out
		})
		for _, a := range ans {
			if a.Prob < -1e-9 || a.Prob > 1+1e-9 {
				return false
			}
		}
		// Sorted by descending probability.
		for i := 1; i < len(ans); i++ {
			if ans[i].Prob > ans[i-1].Prob+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
