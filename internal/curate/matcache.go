package curate

import (
	"container/list"
	"fmt"
	"sync"
)

// MatPolicy selects the materialization cache's retention policy.
type MatPolicy int

const (
	// PolicyRanked retains entries by rank = hits × benefit (recompute
	// cost), the context-aware policy FS.9 proposes: discovered results
	// that are expensive to rebuild and frequently reused stay
	// materialized.
	PolicyRanked MatPolicy = iota
	// PolicyLRU is the classical recency baseline.
	PolicyLRU
)

// String names the policy.
func (p MatPolicy) String() string {
	switch p {
	case PolicyRanked:
		return "ranked"
	case PolicyLRU:
		return "lru"
	}
	return fmt.Sprintf("matpolicy(%d)", int(p))
}

// MatStats reports cache effectiveness.
type MatStats struct {
	Hits, Misses, Evictions int
}

// HitRate returns hits / (hits+misses).
func (s MatStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// matEntry is one materialized result.
type matEntry struct {
	key     string
	value   any
	benefit float64 // recompute cost
	hits    int
	lruElem *list.Element
}

// rank is the retention score under PolicyRanked.
func (e *matEntry) rank() float64 { return float64(1+e.hits) * e.benefit }

// MatCache is the materialization cache for discovered/derived results
// (FS.9). Safe for concurrent use.
type MatCache struct {
	mu       sync.Mutex
	policy   MatPolicy
	capacity int
	entries  map[string]*matEntry
	lru      *list.List // front = most recent
	stats    MatStats
}

// NewMatCache creates a cache holding up to capacity entries.
func NewMatCache(capacity int, policy MatPolicy) *MatCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &MatCache{
		policy:   policy,
		capacity: capacity,
		entries:  map[string]*matEntry{},
		lru:      list.New(),
	}
}

// Get returns the materialized result for the key.
func (c *MatCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.hits++
	c.lru.MoveToFront(e.lruElem)
	return e.value, true
}

// Put materializes a result. benefit is the cost of recomputing it (the
// ranked policy keeps high-benefit entries; LRU ignores it).
func (c *MatCache) Put(key string, value any, benefit float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.value = value
		e.benefit = benefit
		c.lru.MoveToFront(e.lruElem)
		return
	}
	if len(c.entries) >= c.capacity {
		c.evict()
	}
	e := &matEntry{key: key, value: value, benefit: benefit}
	e.lruElem = c.lru.PushFront(e)
	c.entries[key] = e
}

// evict removes one entry per the policy.
func (c *MatCache) evict() {
	switch c.policy {
	case PolicyLRU:
		back := c.lru.Back()
		if back == nil {
			return
		}
		c.remove(back.Value.(*matEntry))
	case PolicyRanked:
		var victim *matEntry
		for _, e := range c.entries {
			if victim == nil || e.rank() < victim.rank() ||
				(e.rank() == victim.rank() && e.key < victim.key) {
				victim = e
			}
		}
		if victim != nil {
			c.remove(victim)
		}
	}
}

func (c *MatCache) remove(e *matEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.lruElem)
	c.stats.Evictions++
}

// Invalidate drops an entry (curation changed its inputs).
func (c *MatCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		delete(c.entries, e.key)
		c.lru.Remove(e.lruElem)
	}
}

// InvalidateAll clears the cache (enrichment version changed).
func (c *MatCache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*matEntry{}
	c.lru.Init()
}

// Len returns the number of materialized entries.
func (c *MatCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit/miss counters.
func (c *MatCache) Stats() MatStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
