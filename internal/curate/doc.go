// Package curate implements the self-curation pipeline — the paper's
// "gradual curation process that transforms the raw data into a new
// unified entity that has knowledge-like characteristics" (Section 1).
//
// One IngestDataset call runs the full layer stack for a source delivery,
// as a staged pipeline over record batches:
//
//	decode stage     – pure per-record work (instance-record construction,
//	                   ER normalization) runs on a worker pool, morsel-
//	                   parallel, before any curation state is touched;
//	instance layer   – each decoded batch lands in storage through the
//	                   batch write path (one latch acquisition, one
//	                   multi-record log frame) and the catalog observes
//	                   its schema (no DDL);
//	relation layer   – entities and edges enter the graph; literal
//	                   foreign references are resolved to entity edges via
//	                   link rules (online instance-level integration, with
//	                   unresolved references retried as later sources
//	                   arrive — "continuous online integration", §4.2);
//	                   incremental entity resolution merges duplicates
//	                   (FS.1); information extraction turns unstructured
//	                   text into mentions and confidence-weighted edges;
//	semantic layer   – the reasoner incrementally re-materializes inferred
//	                   types, existential witnesses, and inconsistencies.
//
// The relation stage stays strictly in record order — incremental ER
// merge decisions depend on arrival order, and the differential tests
// require batched and per-record ingest to converge to identical state —
// so only the decode stage fans out.
//
// A pass is observable end to end: IngestOptions.Trace attaches per-stage
// spans (decode busy time across the worker pool, batch install with WAL
// fsync wait, relation/ER, integration, incremental inference) to the
// request's obs trace, so the cost of curation — the part of the write
// path a conventional engine doesn't have — is first-class in the ops
// surface rather than folded into an opaque ingest latency.
//
// The package also provides the ranked materialization cache of FS.9
// ("context-aware materialization of ranked & discovered data").
package curate
