package curate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scdb/internal/datagen"
	"scdb/internal/extract"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/storage"
)

// pipelineOver builds a fresh pipeline over an existing store.
func pipelineOver(t *testing.T, s *storage.Store) (*Pipeline, *graph.Graph) {
	t.Helper()
	g := graph.New()
	p, err := NewPipeline(Config{
		Store:    s,
		Graph:    g,
		Ontology: datagen.LifeSciOntology(),
		LinkRules: []LinkRule{
			{Predicate: "targets_symbol", EdgePredicate: "targets", TargetAttrs: []string{"symbol", "gene_symbol"}, TargetType: "Gene"},
			{Predicate: "treats_name", EdgePredicate: "treats", TargetAttrs: []string{"disease_name"}},
		},
		Patterns: []extract.Pattern{
			{Trigger: "treats", Predicate: "treats"},
			{Trigger: "targets", Predicate: "targets"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func TestRebuildReproducesGraph(t *testing.T) {
	s, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p1, g1 := pipelineOver(t, s)
	for _, ds := range datagen.LifeSci(1, 20, 15, 10) {
		if err := p1.IngestDataset(ds); err != nil {
			t.Fatal(err)
		}
	}

	// A second pipeline over the same store rebuilds the same graph.
	p2, g2 := pipelineOver(t, s)
	if err := p2.RebuildFromStore(); err != nil {
		t.Fatal(err)
	}
	if g2.NumEntities() != g1.NumEntities() {
		t.Errorf("entities: rebuilt %d vs live %d", g2.NumEntities(), g1.NumEntities())
	}
	if g2.NumEdges() != g1.NumEdges() {
		t.Errorf("edges: rebuilt %d vs live %d", g2.NumEdges(), g1.NumEdges())
	}
	if p2.Stats().Merges != p1.Stats().Merges {
		t.Errorf("merges: rebuilt %d vs live %d", p2.Stats().Merges, p1.Stats().Merges)
	}
	if p2.Stats().LinksPending != p1.Stats().LinksPending {
		t.Errorf("pending: rebuilt %d vs live %d", p2.Stats().LinksPending, p1.Stats().LinksPending)
	}
	// Reasoner state matches too.
	if p2.Reasoner().Stats().Witnesses != p1.Reasoner().Stats().Witnesses {
		t.Errorf("witnesses: rebuilt %d vs live %d",
			p2.Reasoner().Stats().Witnesses, p1.Reasoner().Stats().Witnesses)
	}
	// Per-entity check on the canonical Figure-2 chain.
	w1, ok1 := g1.FindByKey("drugbank", "DB00682")
	w2, ok2 := g2.FindByKey("drugbank", "DB00682")
	if !ok1 || !ok2 {
		t.Fatal("warfarin missing")
	}
	if len(g1.Edges(w1.ID)) != len(g2.Edges(w2.ID)) {
		t.Errorf("warfarin edges: %d vs %d", len(g1.Edges(w1.ID)), len(g2.Edges(w2.ID)))
	}
	// New ingests after a rebuild use fresh sequence numbers.
	if err := p2.IngestDataset(datagen.Dataset{
		Source: "drugbank",
		Entities: []datagen.EntitySpec{{Key: "DBNEW", Types: []string{"Drug"},
			Attrs: model.Record{"name": model.String("post rebuild")}}},
		Links: []datagen.LinkSpec{{FromKey: "DBNEW", Predicate: "targets_symbol",
			Literal: model.String("DHFR"), Confidence: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if g2.NumEntities() != g1.NumEntities()+1 {
		t.Error("post-rebuild ingest broken")
	}
}

func TestRebuildEmptyStoreNoop(t *testing.T) {
	s, _ := storage.Open("")
	defer s.Close()
	p, g := pipelineOver(t, s)
	if err := p.RebuildFromStore(); err != nil {
		t.Fatal(err)
	}
	if g.NumEntities() != 0 {
		t.Error("empty rebuild created entities")
	}
}

func TestRebuildSkipsTransactionalRows(t *testing.T) {
	s, _ := storage.Open("")
	defer s.Close()
	p1, _ := pipelineOver(t, s)
	p1.IngestDataset(datagen.Dataset{
		Source:   "src",
		Entities: []datagen.EntitySpec{{Key: "k", Attrs: model.Record{"name": model.String("real")}}},
	})
	// A row without _key (as a transaction would write) is instance-only.
	tb, _ := s.Table("src")
	tb.Insert(model.Record{"note": model.String("not curated")})

	p2, g2 := pipelineOver(t, s)
	if err := p2.RebuildFromStore(); err != nil {
		t.Fatal(err)
	}
	if g2.NumEntities() != 1 {
		t.Errorf("rebuilt entities = %d, want 1 (keyless rows skipped)", g2.NumEntities())
	}
}

func TestIsSystemTable(t *testing.T) {
	for name, want := range map[string]bool{
		"_catalog_tables": true,
		"_curate_links":   true,
		"_claims":         true,
		"drugbank":        false,
		"notes":           false,
	} {
		if got := IsSystemTable(name); got != want {
			t.Errorf("IsSystemTable(%q) = %v", name, got)
		}
	}
}

// TestPropertyRebuildEquivalence: for random dataset sequences, a rebuilt
// pipeline reproduces the live pipeline's graph counts exactly.
func TestPropertyRebuildEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, err := storage.Open("")
		if err != nil {
			return false
		}
		defer s.Close()
		p1, g1 := pipelineOver(t, s)
		nSources := 1 + r.Intn(3)
		for si := 0; si < nSources; si++ {
			ds := datagen.Dataset{Source: fmt.Sprintf("src%d", si)}
			n := 1 + r.Intn(8)
			for i := 0; i < n; i++ {
				ds.Entities = append(ds.Entities, datagen.EntitySpec{
					Key:   fmt.Sprintf("k%d", i),
					Types: []string{[]string{"Drug", "Gene", "Disease"}[r.Intn(3)]},
					Attrs: model.Record{"name": model.String(fmt.Sprintf("entity %d of %d", i, si))},
				})
			}
			for i := 0; i+1 < n && i < 3; i++ {
				ds.Links = append(ds.Links, datagen.LinkSpec{
					FromKey: fmt.Sprintf("k%d", i), Predicate: "rel",
					ToKey: fmt.Sprintf("k%d", i+1), Confidence: 1,
				})
			}
			if r.Intn(2) == 0 {
				ds.Links = append(ds.Links, datagen.LinkSpec{
					FromKey: "k0", Predicate: "targets_symbol",
					Literal: model.String("GENX"), Confidence: 1,
				})
			}
			if err := p1.IngestDataset(ds); err != nil {
				t.Log(err)
				return false
			}
		}
		p2, g2 := pipelineOver(t, s)
		if err := p2.RebuildFromStore(); err != nil {
			t.Log(err)
			return false
		}
		return g2.NumEntities() == g1.NumEntities() &&
			g2.NumEdges() == g1.NumEdges() &&
			p2.Stats().Merges == p1.Stats().Merges &&
			p2.Stats().LinksPending == p1.Stats().LinksPending
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
