// Package curate implements the self-curation pipeline — the paper's
// "gradual curation process that transforms the raw data into a new
// unified entity that has knowledge-like characteristics" (Section 1).
//
// One IngestDataset call runs the full layer stack for a source delivery:
//
//	instance layer   – records land in storage, the catalog observes their
//	                   schema (no DDL);
//	relation layer   – entities and edges enter the graph; literal
//	                   foreign references are resolved to entity edges via
//	                   link rules (online instance-level integration, with
//	                   unresolved references retried as later sources
//	                   arrive — "continuous online integration", §4.2);
//	                   incremental entity resolution merges duplicates
//	                   (FS.1); information extraction turns unstructured
//	                   text into mentions and confidence-weighted edges;
//	semantic layer   – the reasoner incrementally re-materializes inferred
//	                   types, existential witnesses, and inconsistencies.
//
// The package also provides the ranked materialization cache of FS.9
// ("context-aware materialization of ranked & discovered data").
package curate

import (
	"fmt"

	"scdb/internal/catalog"
	"scdb/internal/datagen"
	"scdb/internal/er"
	"scdb/internal/extract"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/ontology"
	"scdb/internal/reason"
	"scdb/internal/storage"
)

// LinkRule tells the pipeline how to resolve a source's literal foreign
// references into relation-layer edges: a literal edge with Predicate is
// matched against entities whose TargetAttrs carry the same (normalized)
// value, producing an EdgePredicate edge.
type LinkRule struct {
	Predicate     string
	EdgePredicate string
	TargetAttrs   []string
	// TargetType optionally restricts matches to entities asserting the
	// concept.
	TargetType string
}

// Stats accumulates pipeline counters.
type Stats struct {
	Datasets        int
	Records         int
	Entities        int
	Edges           int
	LiteralEdges    int
	LinksDiscovered int
	LinksPending    int
	Merges          int
	Extractions     int
	InferredTypes   int
	Witnesses       int
	Inconsistencies int
}

// pendingLink is a literal reference that found no target yet.
type pendingLink struct {
	from model.EntityID
	rule LinkRule
	val  string
	conf model.Fuzzy
}

// Pipeline wires the layers together. It is not safe for concurrent use;
// the engine serializes curation.
type Pipeline struct {
	store    *storage.Store
	cat      *catalog.Catalog
	graph    *graph.Graph
	onto     *ontology.Ontology
	reasoner *reason.Reasoner
	resolver *er.Resolver
	gaz      *extract.Gazetteer
	patterns []extract.Pattern
	rules    []LinkRule

	// attrIndex maps normalized attribute values to entity IDs, per
	// indexed attribute, for link discovery and mention grounding.
	attrIndex map[string][]model.EntityID
	pending   []pendingLink
	stats     Stats

	// Replay bookkeeping (see rebuild.go).
	seenSources map[string]bool
	seq         int
}

// Config assembles a pipeline.
type Config struct {
	Store     *storage.Store
	Catalog   *catalog.Catalog
	Graph     *graph.Graph
	Ontology  *ontology.Ontology
	Reasoner  *reason.Reasoner
	LinkRules []LinkRule
	Patterns  []extract.Pattern
	// ERConfig tunes incremental entity resolution.
	ERConfig er.Config
}

// NewPipeline creates the pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Store == nil || cfg.Graph == nil || cfg.Ontology == nil {
		return nil, fmt.Errorf("curate: store, graph, and ontology are required")
	}
	r := cfg.Reasoner
	if r == nil {
		r = reason.New(cfg.Graph, cfg.Ontology)
	}
	return &Pipeline{
		store:       cfg.Store,
		cat:         cfg.Catalog,
		graph:       cfg.Graph,
		onto:        cfg.Ontology,
		reasoner:    r,
		resolver:    er.NewResolver(cfg.ERConfig),
		gaz:         extract.NewGazetteer(),
		patterns:    cfg.Patterns,
		rules:       cfg.LinkRules,
		attrIndex:   map[string][]model.EntityID{},
		seenSources: map[string]bool{},
	}, nil
}

// Stats returns the accumulated counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Reasoner exposes the pipeline's reasoner (the query layer needs it).
func (p *Pipeline) Reasoner() *reason.Reasoner { return p.reasoner }

// Resolver exposes the incremental ER state.
func (p *Pipeline) Resolver() *er.Resolver { return p.resolver }

// IngestDataset runs the full curation pass for one source delivery.
func (p *Pipeline) IngestDataset(ds datagen.Dataset) error {
	p.stats.Datasets++
	if p.cat != nil {
		if err := p.cat.RegisterSource(catalog.SourceInfo{Name: ds.Source, Kind: "dataset"}); err != nil {
			return err
		}
	}
	if err := p.recordIngestMeta(ds); err != nil {
		return err
	}
	table, err := p.store.EnsureTable(ds.Source)
	if err != nil {
		return err
	}
	// Instance layer: records (with their asserted types, so the relation
	// layer is rebuildable) land in the source's table.
	for _, spec := range ds.Entities {
		rec := spec.Attrs.Clone()
		rec["_key"] = model.String(spec.Key)
		if len(spec.Types) > 0 {
			tvals := make([]model.Value, len(spec.Types))
			for i, t := range spec.Types {
				tvals[i] = model.String(t)
			}
			rec[typesAttr] = model.List(tvals...)
		}
		if _, err := table.Insert(rec); err != nil {
			return err
		}
		p.stats.Records++
		if p.cat != nil {
			p.cat.Observe(ds.Source, rec)
		}
	}

	var touched []model.EntityID
	if err := p.replayDataset(ds, &touched); err != nil {
		return err
	}

	// Semantic layer: incremental re-inference over touched entities.
	rs := p.reasoner.MaterializeEntities(touched)
	p.stats.InferredTypes = rs.InferredTypes
	p.stats.Witnesses = rs.Witnesses
	p.stats.Inconsistencies = rs.Inconsistencies
	p.refreshConceptStats()
	return nil
}

// replayDataset runs the relation-layer half of curation: entities into
// the graph, incremental ER, link discovery, and extraction. It is shared
// by live ingestion and RebuildFromStore (which replays stored inputs
// without touching the instance layer again).
func (p *Pipeline) replayDataset(ds datagen.Dataset, touched *[]model.EntityID) error {
	for _, spec := range ds.Entities {
		e := &model.Entity{Key: spec.Key, Source: ds.Source, Types: spec.Types, Attrs: spec.Attrs, Confidence: 1}
		id := p.graph.AddEntity(e)
		p.stats.Entities++
		*touched = append(*touched, id)
		p.indexEntity(id, spec.Attrs)

		// Incremental ER against everything already curated.
		resolved, _ := p.graph.Entity(id)
		for _, m := range p.resolver.Add(&model.Entity{ID: id, Key: spec.Key, Source: ds.Source, Attrs: resolved.Attrs, Types: resolved.Types}) {
			if err := p.graph.Merge(m.A, m.B); err != nil {
				return err
			}
			p.stats.Merges++
			*touched = append(*touched, m.A)
		}
	}

	// Intra-dataset entity edges.
	for _, l := range ds.Links {
		from, ok := p.graph.FindByKey(ds.Source, l.FromKey)
		if !ok {
			return fmt.Errorf("curate: link from unknown key %q in %s", l.FromKey, ds.Source)
		}
		conf := model.Fuzzy(l.Confidence)
		if conf == 0 {
			conf = 1
		}
		if l.ToKey != "" {
			to, ok := p.graph.FindByKey(ds.Source, l.ToKey)
			if !ok {
				return fmt.Errorf("curate: link to unknown key %q in %s", l.ToKey, ds.Source)
			}
			if err := p.graph.AddEdge(graph.Edge{From: from.ID, Predicate: l.Predicate, To: model.Ref(to.ID), Source: ds.Source, Confidence: conf}); err != nil {
				return err
			}
			p.stats.Edges++
			*touched = append(*touched, from.ID, to.ID)
			continue
		}
		// Literal edge: try link rules, else store the literal.
		if p.applyRules(from.ID, ds.Source, l.Predicate, l.Literal, conf, touched) {
			continue
		}
		if err := p.graph.AddEdge(graph.Edge{From: from.ID, Predicate: l.Predicate, To: l.Literal, Source: ds.Source, Confidence: conf}); err != nil {
			return err
		}
		p.stats.LiteralEdges++
	}

	// Unstructured text → extractions → edges.
	for _, text := range ds.Texts {
		for _, ex := range extract.ExtractRelations(text, p.gaz, p.patterns) {
			subj := p.lookupValue(ex.Subject.Canonical)
			obj := p.lookupValue(ex.Object.Canonical)
			if subj == model.NoEntity || obj == model.NoEntity || subj == obj {
				continue
			}
			if err := p.graph.AddEdge(graph.Edge{From: subj, Predicate: ex.Predicate, To: model.Ref(obj), Source: ds.Source + ":text", Confidence: model.Fuzzy(ex.Confidence)}); err != nil {
				return err
			}
			p.stats.Extractions++
			*touched = append(*touched, subj, obj)
		}
	}

	// Continuous integration: links that failed earlier may resolve now.
	p.retryPending(touched)
	return nil
}

// applyRules attempts to resolve a literal reference through the link
// rules; unresolved matches are parked for retry.
func (p *Pipeline) applyRules(from model.EntityID, source, predicate string, literal model.Value, conf model.Fuzzy, touched *[]model.EntityID) bool {
	for _, rule := range p.rules {
		if rule.Predicate != predicate {
			continue
		}
		val := er.Normalize(literal.Text())
		if target := p.findTarget(rule, val); target != model.NoEntity {
			if err := p.graph.AddEdge(graph.Edge{From: from, Predicate: rule.EdgePredicate, To: model.Ref(target), Source: source, Confidence: conf}); err == nil {
				p.stats.Edges++
				p.stats.LinksDiscovered++
				*touched = append(*touched, from, target)
			}
			return true
		}
		p.pending = append(p.pending, pendingLink{from: from, rule: rule, val: val, conf: conf})
		p.stats.LinksPending++
		return true
	}
	return false
}

// retryPending re-attempts parked literal references (new arrivals may
// have supplied the target).
func (p *Pipeline) retryPending(touched *[]model.EntityID) {
	var still []pendingLink
	for _, pl := range p.pending {
		if target := p.findTarget(pl.rule, pl.val); target != model.NoEntity {
			if err := p.graph.AddEdge(graph.Edge{From: pl.from, Predicate: pl.rule.EdgePredicate, To: model.Ref(target), Source: "discovered", Confidence: pl.conf}); err == nil {
				p.stats.Edges++
				p.stats.LinksDiscovered++
				*touched = append(*touched, p.graph.Resolve(pl.from), target)
			}
			continue
		}
		still = append(still, pl)
	}
	p.pending = still
	p.stats.LinksPending = len(still)
}

// findTarget resolves a normalized literal to an entity via the attribute
// index, honoring the rule's type filter. Ambiguity (multiple distinct
// canonical entities) resolves to the first by ID for determinism.
func (p *Pipeline) findTarget(rule LinkRule, val string) model.EntityID {
	best := model.NoEntity
	for _, id := range p.attrIndex[val] {
		id = p.graph.Resolve(id)
		e, ok := p.graph.Entity(id)
		if !ok {
			continue
		}
		if rule.TargetType != "" && !p.reasoner.HasType(id, rule.TargetType) && !e.HasType(rule.TargetType) {
			continue
		}
		if best == model.NoEntity || id < best {
			best = id
		}
	}
	return best
}

// lookupValue grounds an extracted mention to an entity.
func (p *Pipeline) lookupValue(text string) model.EntityID {
	ids := p.attrIndex[er.Normalize(text)]
	if len(ids) == 0 {
		return model.NoEntity
	}
	best := p.graph.Resolve(ids[0])
	for _, id := range ids[1:] {
		if r := p.graph.Resolve(id); r < best {
			best = r
		}
	}
	return best
}

// indexEntity adds the entity's string attribute values to the lookup
// index and the gazetteer.
func (p *Pipeline) indexEntity(id model.EntityID, attrs model.Record) {
	e, ok := p.graph.Entity(id)
	if !ok {
		return
	}
	concept := ""
	if len(e.Types) > 0 {
		concept = e.Types[0]
	}
	for _, k := range attrs.Keys() {
		v := attrs[k]
		s, ok := v.AsString()
		if !ok || s == "" {
			continue
		}
		norm := er.Normalize(s)
		if norm == "" {
			continue
		}
		p.attrIndex[norm] = append(p.attrIndex[norm], id)
		p.gaz.Add(s, concept)
	}
}

// refreshConceptStats pushes instance counts into the ontology for the
// optimizer's semantic selectivity (OS.3).
func (p *Pipeline) refreshConceptStats() {
	counts := map[string]int{}
	p.graph.ForEachEntity(func(e *model.Entity) bool {
		for _, t := range p.reasoner.EntityTypes(e.ID) {
			counts[t]++
		}
		return true
	})
	for c, n := range counts {
		p.onto.SetInstanceCount(c, n)
	}
}

// EnrichmentVersion combines the graph and ontology versions — the
// enrichment clock FS.11's transaction validation watches.
func (p *Pipeline) EnrichmentVersion() uint64 {
	return p.graph.Version() + p.onto.Version()
}
