package curate

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scdb/internal/catalog"
	"scdb/internal/datagen"
	"scdb/internal/er"
	"scdb/internal/extract"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/obs"
	"scdb/internal/ontology"
	"scdb/internal/reason"
	"scdb/internal/storage"
)

// LinkRule tells the pipeline how to resolve a source's literal foreign
// references into relation-layer edges: a literal edge with Predicate is
// matched against entities whose TargetAttrs carry the same (normalized)
// value, producing an EdgePredicate edge.
type LinkRule struct {
	Predicate     string
	EdgePredicate string
	TargetAttrs   []string
	// TargetType optionally restricts matches to entities asserting the
	// concept.
	TargetType string
}

// Stats accumulates pipeline counters.
type Stats struct {
	Datasets        int
	Records         int
	Entities        int
	Edges           int
	LiteralEdges    int
	LinksDiscovered int
	LinksPending    int
	Merges          int
	Extractions     int
	InferredTypes   int
	Witnesses       int
	Inconsistencies int
	// ER mirrors the resolver's work counters (comparisons, candidates,
	// ANN probes, block counts) at snapshot time — filled by
	// Pipeline.Stats, not accumulated here.
	ER er.Stats
}

// pendingLink is a literal reference that found no target yet.
type pendingLink struct {
	from model.EntityID
	rule LinkRule
	val  string
	conf model.Fuzzy
}

// Pipeline wires the layers together. Curation passes serialize on the
// pipeline's own mutex (the resolver, attribute index, pending links, and
// counters have no latches of their own); the structures it feeds — store,
// catalog, graph, ontology, reasoner — each carry their own, so queries
// keep reading them while a pass runs.
//
// Lock order: pipeline.mu is never acquired while holding the engine's
// db.mu — core takes them in pipeline-then-db order only.
type Pipeline struct {
	store    *storage.Store
	cat      *catalog.Catalog
	graph    *graph.Graph
	onto     *ontology.Ontology
	reasoner *reason.Reasoner
	resolver *er.Resolver
	gaz      *extract.Gazetteer
	patterns []extract.Pattern
	rules    []LinkRule

	mu sync.Mutex // serializes curation passes; guards all fields below

	// attrIndex maps normalized attribute values to entity IDs, per
	// indexed attribute, for link discovery and mention grounding.
	attrIndex map[string][]model.EntityID
	pending   []pendingLink
	stats     Stats

	// Replay bookkeeping (see rebuild.go).
	seenSources map[string]bool
	seq         int
}

// Config assembles a pipeline.
type Config struct {
	Store     *storage.Store
	Catalog   *catalog.Catalog
	Graph     *graph.Graph
	Ontology  *ontology.Ontology
	Reasoner  *reason.Reasoner
	LinkRules []LinkRule
	Patterns  []extract.Pattern
	// ERConfig tunes incremental entity resolution.
	ERConfig er.Config
}

// NewPipeline creates the pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Store == nil || cfg.Graph == nil || cfg.Ontology == nil {
		return nil, fmt.Errorf("curate: store, graph, and ontology are required")
	}
	r := cfg.Reasoner
	if r == nil {
		r = reason.New(cfg.Graph, cfg.Ontology)
	}
	return &Pipeline{
		store:       cfg.Store,
		cat:         cfg.Catalog,
		graph:       cfg.Graph,
		onto:        cfg.Ontology,
		reasoner:    r,
		resolver:    er.NewResolver(cfg.ERConfig),
		gaz:         extract.NewGazetteer(),
		patterns:    cfg.Patterns,
		rules:       cfg.LinkRules,
		attrIndex:   map[string][]model.EntityID{},
		seenSources: map[string]bool{},
	}, nil
}

// Stats returns the accumulated counters plus the resolver's work
// counters at this moment.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.ER = p.resolver.Stats()
	return s
}

// ERDigests exports the resolver's entities and accepted matches past the
// given watermarks for cross-shard exchange, serialized against ingest by
// the pipeline mutex (the resolver itself is not goroutine-safe).
func (p *Pipeline) ERDigests(entsSince, matchesSince int) er.DigestBatch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resolver.DigestsSince(entsSince, matchesSince)
}

// Reasoner exposes the pipeline's reasoner (the query layer needs it).
func (p *Pipeline) Reasoner() *reason.Reasoner { return p.reasoner }

// Resolver exposes the incremental ER state.
func (p *Pipeline) Resolver() *er.Resolver { return p.resolver }

// DefaultIngestBatch is the records-per-batch granule when IngestOptions
// leaves BatchSize zero — matching the storage scan morsel size.
const DefaultIngestBatch = 1024

// IngestOptions tunes the batched ingest path.
type IngestOptions struct {
	// BatchSize is records per storage write batch (<=0 = DefaultIngestBatch;
	// 1 degrades to the per-record write path, the serial baseline).
	BatchSize int
	// Parallelism sizes the decode worker pool (<=0 = one per CPU; 1
	// decodes inline). Final state is identical for every setting.
	Parallelism int
	// Trace, when non-nil, receives per-stage spans for this pass:
	// decode fan-out busy time, batch install (with WAL fsync wait),
	// relation/ER, integration, and incremental inference.
	Trace *obs.Trace
}

// IngestDataset runs the full curation pass for one source delivery with
// default batching.
func (p *Pipeline) IngestDataset(ds datagen.Dataset) error {
	return p.IngestDatasetOpts(ds, IngestOptions{})
}

// normEntry is one precomputed (raw, normalized) string attribute value,
// the decode stage's contribution to attribute indexing.
type normEntry struct {
	raw  string
	norm string
}

// decodedBatch is the decode stage's output for one chunk of entity specs.
type decodedBatch struct {
	recs  []model.Record
	norms [][]normEntry
}

// buildInstanceRecord turns a spec into the instance-layer row (attributes
// plus _key and asserted types, so the relation layer is rebuildable).
func buildInstanceRecord(spec datagen.EntitySpec) model.Record {
	rec := spec.Attrs.Clone()
	rec["_key"] = model.String(spec.Key)
	if len(spec.Types) > 0 {
		tvals := make([]model.Value, len(spec.Types))
		for i, t := range spec.Types {
			tvals[i] = model.String(t)
		}
		rec[typesAttr] = model.List(tvals...)
	}
	return rec
}

// computeNorms extracts and normalizes the spec's string attribute values
// (the CPU-heavy half of attribute indexing; pure, so it parallelizes).
func computeNorms(attrs model.Record) []normEntry {
	var norms []normEntry
	for _, k := range attrs.Keys() {
		s, ok := attrs[k].AsString()
		if !ok || s == "" {
			continue
		}
		norm := er.Normalize(s)
		if norm == "" {
			continue
		}
		norms = append(norms, normEntry{raw: s, norm: norm})
	}
	return norms
}

func decodeChunk(chunk []datagen.EntitySpec) decodedBatch {
	d := decodedBatch{
		recs:  make([]model.Record, len(chunk)),
		norms: make([][]normEntry, len(chunk)),
	}
	for i, spec := range chunk {
		d.recs[i] = buildInstanceRecord(spec)
		d.norms[i] = computeNorms(spec.Attrs)
	}
	return d
}

// IngestDatasetOpts runs the staged curation pass: decode fans out on a
// worker pool and streams batches to the serialized install/relate stages,
// so batch k+1 decodes while batch k installs. The final state is
// byte-identical to a serial per-record pass (the differential tests pin
// this), because every order-sensitive step — storage row IDs, catalog
// observation, graph insertion, incremental ER — runs in record order.
func (p *Pipeline) IngestDatasetOpts(ds datagen.Dataset, opt IngestOptions) error {
	batchSize := opt.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultIngestBatch
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Tracing: the root is the service layer's request span when this pass
	// came over the wire, or a fresh "ingest" root for embedded callers.
	// All span calls no-op when opt.Trace is nil; decodeBusy sums worker
	// busy time across the pool so the decode stage reports CPU cost, not
	// wall clock.
	tr := opt.Trace
	root := tr.Root("ingest")
	root.SetStr("source", ds.Source)
	var decodeBusy atomic.Int64

	// Stage 1 — decode. Chunks hand out in index order; ready[ci] closes
	// when chunk ci is decoded.
	var chunks [][]datagen.EntitySpec
	for lo := 0; lo < len(ds.Entities); lo += batchSize {
		hi := min(lo+batchSize, len(ds.Entities))
		chunks = append(chunks, ds.Entities[lo:hi])
	}
	decoded := make([]decodedBatch, len(chunks))
	var ready []chan struct{}
	if workers > 1 && len(chunks) > 1 {
		ready = make([]chan struct{}, len(chunks))
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			go func() {
				for ci := range jobs {
					start := time.Now()
					decoded[ci] = decodeChunk(chunks[ci])
					decodeBusy.Add(int64(time.Since(start)))
					close(ready[ci])
				}
			}()
		}
		go func() {
			for ci := range chunks {
				jobs <- ci
			}
			close(jobs)
		}()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Datasets++
	if p.cat != nil {
		if err := p.cat.RegisterSource(catalog.SourceInfo{Name: ds.Source, Kind: "dataset"}); err != nil {
			return err
		}
	}
	if err := p.recordIngestMeta(ds, batchSize); err != nil {
		return err
	}
	table, err := p.store.EnsureTable(ds.Source)
	if err != nil {
		return err
	}
	walBefore := p.store.WALStats()
	entBefore, mergeBefore := p.stats.Entities, p.stats.Merges
	erBefore := p.resolver.Stats()
	var installDur, relateDur, blockBusy, scoreBusy time.Duration
	var touched []model.EntityID
	for ci := range chunks {
		if ready != nil {
			<-ready[ci]
		} else {
			start := time.Now()
			decoded[ci] = decodeChunk(chunks[ci])
			decodeBusy.Add(int64(time.Since(start)))
		}
		d := &decoded[ci]

		// Stage 2 — instance layer: one latch acquisition, one zone-map and
		// index maintenance pass, one multi-record log frame per batch.
		start := time.Now()
		if batchSize == 1 {
			if _, err := table.Insert(d.recs[0]); err != nil {
				return err
			}
		} else if _, err := table.InsertBatch(d.recs); err != nil {
			return err
		}
		p.stats.Records += len(d.recs)
		if p.cat != nil {
			for _, rec := range d.recs {
				p.cat.Observe(ds.Source, rec)
			}
		}
		installDur += time.Since(start)

		// Stage 3 — relation layer. Candidate generation and pair scoring
		// are pure reads over the resolver's committed state, so they fan
		// out across the worker pool; graph insertion, union-find merge,
		// and attribute/ANN indexing then replay strictly in record order
		// (the same ordered-commit shape as the decode stage), keeping the
		// final state byte-identical to a serial pass.
		start = time.Now()
		preps := p.prepareChunk(ds.Source, chunks[ci], workers)
		for _, prep := range preps {
			blockBusy += prep.BlockDur()
			scoreBusy += prep.ScoreDur()
		}
		for i, spec := range chunks[ci] {
			if err := p.relatePrepared(ds.Source, spec, d.norms[i], preps[i], &touched); err != nil {
				return err
			}
		}
		relateDur += time.Since(start)
	}
	if tr != nil {
		walAfter := p.store.WALStats()
		dec := root.ChildDur("ingest.decode", time.Duration(decodeBusy.Load()))
		dec.SetInt("records", int64(len(ds.Entities)))
		dec.SetInt("chunks", int64(len(chunks)))
		dec.SetInt("workers", int64(workers))
		inst := root.ChildDur("ingest.install", installDur)
		inst.SetInt("rows", int64(len(ds.Entities)))
		inst.SetInt("batches", int64(len(chunks)))
		inst.SetInt("wal_frames", int64(walAfter.Frames-walBefore.Frames))
		inst.SetInt("wal_bytes", int64(walAfter.Bytes-walBefore.Bytes))
		inst.SetDur("wal_fsync_wait_us", walAfter.CommitWait-walBefore.CommitWait)
		rel := root.ChildDur("ingest.relate", relateDur)
		rel.SetInt("entities", int64(p.stats.Entities-entBefore))
		rel.SetInt("merges", int64(p.stats.Merges-mergeBefore))
		erAfter := p.resolver.Stats()
		blk := root.ChildDur("ingest.block", blockBusy)
		blk.SetInt("candidates", int64(erAfter.Candidates-erBefore.Candidates))
		blk.SetInt("ann_probes", int64(erAfter.ANNProbes-erBefore.ANNProbes))
		blk.SetInt("block_skips", int64(erAfter.BlockSkips-erBefore.BlockSkips))
		sc := root.ChildDur("ingest.score", scoreBusy)
		sc.SetInt("comparisons", int64(erAfter.Comparisons-erBefore.Comparisons))
		sc.SetInt("workers", int64(workers))
	}
	integ := root.Child("ingest.integrate")
	if err := p.integrate(ds, &touched); err != nil {
		integ.End()
		return err
	}
	integ.SetInt("links_discovered", int64(p.stats.LinksDiscovered))
	integ.SetInt("links_pending", int64(p.stats.LinksPending))
	integ.End()

	// Semantic layer: incremental re-inference over touched entities.
	infer := root.Child("ingest.infer")
	rs := p.reasoner.MaterializeEntities(touched)
	p.stats.InferredTypes = rs.InferredTypes
	p.stats.Witnesses = rs.Witnesses
	p.stats.Inconsistencies = rs.Inconsistencies
	p.refreshConceptStats()
	infer.SetInt("inferred_types", int64(rs.InferredTypes))
	infer.SetInt("witnesses", int64(rs.Witnesses))
	infer.SetInt("inconsistencies", int64(rs.Inconsistencies))
	infer.End()
	return nil
}

// prepareChunk runs the resolver's pure half — candidate generation and
// pair scoring — for every spec of the chunk, fanned out across the
// worker pool when it is sized for it. Workers only read the resolver's
// committed state (the chunk commits after this barrier), so the results
// are independent of the worker count.
func (p *Pipeline) prepareChunk(source string, chunk []datagen.EntitySpec, workers int) []*er.Prepared {
	preps := make([]*er.Prepared, len(chunk))
	prep := func(i int) {
		spec := chunk[i]
		preps[i] = p.resolver.Prepare(&model.Entity{Key: spec.Key, Source: source, Types: spec.Types, Attrs: spec.Attrs, Confidence: 1})
	}
	if workers <= 1 || len(chunk) < 2 {
		for i := range chunk {
			prep(i)
		}
		return preps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	n := min(workers, len(chunk))
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunk) {
					return
				}
				prep(i)
			}
		}()
	}
	wg.Wait()
	return preps
}

// relateSpec runs the relation layer for one entity: graph insertion,
// attribute indexing, and incremental ER against everything already
// curated. The serial entry point (replay/rebuild); live ingest goes
// through prepareChunk + relatePrepared.
func (p *Pipeline) relateSpec(source string, spec datagen.EntitySpec, norms []normEntry, touched *[]model.EntityID) error {
	return p.relatePrepared(source, spec, norms, nil, touched)
}

// relatePrepared is the order-sensitive half of the relation layer for
// one entity: graph insertion, attribute indexing, and the resolver's
// ordered commit. prep carries the pre-scored candidate set computed
// against the pre-chunk snapshot; it is valid only for a key new to the
// graph — a re-delivered key merges attributes into the existing entity,
// so the record is re-scored serially from the resolved entity, exactly
// as a serial pass would. nil prep always takes the serial path.
func (p *Pipeline) relatePrepared(source string, spec datagen.EntitySpec, norms []normEntry, prep *er.Prepared, touched *[]model.EntityID) error {
	_, existed := p.graph.FindByKey(source, spec.Key)
	e := &model.Entity{Key: spec.Key, Source: source, Types: spec.Types, Attrs: spec.Attrs, Confidence: 1}
	id := p.graph.AddEntity(e)
	p.stats.Entities++
	*touched = append(*touched, id)
	p.indexNorms(id, norms)

	var matches []er.Match
	if prep == nil || existed {
		resolved, _ := p.graph.Entity(id)
		matches = p.resolver.Add(&model.Entity{ID: id, Key: spec.Key, Source: source, Attrs: resolved.Attrs, Types: resolved.Types})
	} else {
		matches = p.resolver.Commit(prep, id)
	}
	for _, m := range matches {
		if err := p.graph.Merge(m.A, m.B); err != nil {
			return err
		}
		p.stats.Merges++
		*touched = append(*touched, m.A)
	}
	return nil
}

// replayDataset runs the relation-layer half of curation: entities into
// the graph, incremental ER, link discovery, and extraction. It is shared
// by live ingestion and RebuildFromStore (which replays stored inputs
// without touching the instance layer again). Caller holds p.mu.
func (p *Pipeline) replayDataset(ds datagen.Dataset, touched *[]model.EntityID) error {
	for _, spec := range ds.Entities {
		if err := p.relateSpec(ds.Source, spec, computeNorms(spec.Attrs), touched); err != nil {
			return err
		}
	}
	return p.integrate(ds, touched)
}

// integrate runs the dataset's link specs, text extraction, and the
// pending-link retry — the relation-layer tail after entities landed.
func (p *Pipeline) integrate(ds datagen.Dataset, touched *[]model.EntityID) error {
	// Intra-dataset entity edges.
	for _, l := range ds.Links {
		from, ok := p.graph.FindByKey(ds.Source, l.FromKey)
		if !ok {
			return fmt.Errorf("curate: link from unknown key %q in %s", l.FromKey, ds.Source)
		}
		conf := model.Fuzzy(l.Confidence)
		if conf == 0 {
			conf = 1
		}
		if l.ToKey != "" {
			to, ok := p.graph.FindByKey(ds.Source, l.ToKey)
			if !ok {
				return fmt.Errorf("curate: link to unknown key %q in %s", l.ToKey, ds.Source)
			}
			if err := p.graph.AddEdge(graph.Edge{From: from.ID, Predicate: l.Predicate, To: model.Ref(to.ID), Source: ds.Source, Confidence: conf}); err != nil {
				return err
			}
			p.stats.Edges++
			*touched = append(*touched, from.ID, to.ID)
			continue
		}
		// Literal edge: try link rules, else store the literal.
		if p.applyRules(from.ID, ds.Source, l.Predicate, l.Literal, conf, touched) {
			continue
		}
		if err := p.graph.AddEdge(graph.Edge{From: from.ID, Predicate: l.Predicate, To: l.Literal, Source: ds.Source, Confidence: conf}); err != nil {
			return err
		}
		p.stats.LiteralEdges++
	}

	// Unstructured text → extractions → edges.
	for _, text := range ds.Texts {
		for _, ex := range extract.ExtractRelations(text, p.gaz, p.patterns) {
			subj := p.lookupValue(ex.Subject.Canonical)
			obj := p.lookupValue(ex.Object.Canonical)
			if subj == model.NoEntity || obj == model.NoEntity || subj == obj {
				continue
			}
			if err := p.graph.AddEdge(graph.Edge{From: subj, Predicate: ex.Predicate, To: model.Ref(obj), Source: ds.Source + ":text", Confidence: model.Fuzzy(ex.Confidence)}); err != nil {
				return err
			}
			p.stats.Extractions++
			*touched = append(*touched, subj, obj)
		}
	}

	// Continuous integration: links that failed earlier may resolve now.
	p.retryPending(touched)
	return nil
}

// applyRules attempts to resolve a literal reference through the link
// rules; unresolved matches are parked for retry.
func (p *Pipeline) applyRules(from model.EntityID, source, predicate string, literal model.Value, conf model.Fuzzy, touched *[]model.EntityID) bool {
	for _, rule := range p.rules {
		if rule.Predicate != predicate {
			continue
		}
		val := er.Normalize(literal.Text())
		if target := p.findTarget(rule, val); target != model.NoEntity {
			if err := p.graph.AddEdge(graph.Edge{From: from, Predicate: rule.EdgePredicate, To: model.Ref(target), Source: source, Confidence: conf}); err == nil {
				p.stats.Edges++
				p.stats.LinksDiscovered++
				*touched = append(*touched, from, target)
			}
			return true
		}
		p.pending = append(p.pending, pendingLink{from: from, rule: rule, val: val, conf: conf})
		p.stats.LinksPending++
		return true
	}
	return false
}

// retryPending re-attempts parked literal references (new arrivals may
// have supplied the target).
func (p *Pipeline) retryPending(touched *[]model.EntityID) {
	var still []pendingLink
	for _, pl := range p.pending {
		if target := p.findTarget(pl.rule, pl.val); target != model.NoEntity {
			if err := p.graph.AddEdge(graph.Edge{From: pl.from, Predicate: pl.rule.EdgePredicate, To: model.Ref(target), Source: "discovered", Confidence: pl.conf}); err == nil {
				p.stats.Edges++
				p.stats.LinksDiscovered++
				*touched = append(*touched, p.graph.Resolve(pl.from), target)
			}
			continue
		}
		still = append(still, pl)
	}
	p.pending = still
	p.stats.LinksPending = len(still)
}

// findTarget resolves a normalized literal to an entity via the attribute
// index, honoring the rule's type filter. Ambiguity (multiple distinct
// canonical entities) resolves to the first by ID for determinism.
func (p *Pipeline) findTarget(rule LinkRule, val string) model.EntityID {
	best := model.NoEntity
	for _, id := range p.attrIndex[val] {
		id = p.graph.Resolve(id)
		e, ok := p.graph.Entity(id)
		if !ok {
			continue
		}
		if rule.TargetType != "" && !p.reasoner.HasType(id, rule.TargetType) && !e.HasType(rule.TargetType) {
			continue
		}
		if best == model.NoEntity || id < best {
			best = id
		}
	}
	return best
}

// lookupValue grounds an extracted mention to an entity.
func (p *Pipeline) lookupValue(text string) model.EntityID {
	ids := p.attrIndex[er.Normalize(text)]
	if len(ids) == 0 {
		return model.NoEntity
	}
	best := p.graph.Resolve(ids[0])
	for _, id := range ids[1:] {
		if r := p.graph.Resolve(id); r < best {
			best = r
		}
	}
	return best
}

// indexNorms adds the entity's precomputed normalized attribute values to
// the lookup index and the gazetteer. The gazetteer concept comes from the
// graph entity (a re-delivered key may have merged into richer types).
func (p *Pipeline) indexNorms(id model.EntityID, norms []normEntry) {
	e, ok := p.graph.Entity(id)
	if !ok {
		return
	}
	concept := ""
	if len(e.Types) > 0 {
		concept = e.Types[0]
	}
	for _, ne := range norms {
		p.attrIndex[ne.norm] = append(p.attrIndex[ne.norm], id)
		p.gaz.Add(ne.raw, concept)
	}
}

// refreshConceptStats pushes instance counts into the ontology for the
// optimizer's semantic selectivity (OS.3).
func (p *Pipeline) refreshConceptStats() {
	counts := map[string]int{}
	p.graph.ForEachEntity(func(e *model.Entity) bool {
		for _, t := range p.reasoner.EntityTypes(e.ID) {
			counts[t]++
		}
		return true
	})
	for c, n := range counts {
		p.onto.SetInstanceCount(c, n)
	}
}

// EnrichmentVersion combines the graph and ontology versions — the
// enrichment clock FS.11's transaction validation watches.
func (p *Pipeline) EnrichmentVersion() uint64 {
	return p.graph.Version() + p.onto.Version()
}
