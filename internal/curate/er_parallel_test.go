package curate

import (
	"fmt"
	"testing"

	"scdb/internal/catalog"
	"scdb/internal/datagen"
	"scdb/internal/er"
	"scdb/internal/graph"
	"scdb/internal/ontology"
	"scdb/internal/storage"
)

// iotIngest runs the IoT corpus (two delivery rounds per gateway, so the
// second round re-delivers every key) through a fresh pipeline at the
// given scoring parallelism and returns a byte-comparable signature of
// everything ER decides: pipeline counters (including the resolver's
// Comparisons/Candidates/skip counters), the match log, and the cluster
// structure.
func iotIngest(t *testing.T, mode er.BlockingMode, par int) string {
	t.Helper()
	s, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	cat, err := catalog.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(Config{
		Store:    s,
		Catalog:  cat,
		Graph:    graph.New(),
		Ontology: ontology.New(),
		ERConfig: er.Config{Blocking: mode, MaxBlock: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	sets, _ := datagen.IoTSensors(11, 3, 36, 2, 0.25)
	for _, ds := range sets {
		// Small batches force several chunks per delivery, so parallel
		// Prepare runs against mid-delivery snapshots.
		if err := p.IngestDatasetOpts(ds, IngestOptions{Parallelism: par, BatchSize: 16}); err != nil {
			t.Fatal(err)
		}
	}
	return fmt.Sprintf("stats=%+v\nmatches=%v\nclusters=%v",
		p.Stats(), p.Resolver().Matches(), p.Resolver().Clusters())
}

// TestParallelScoringDifferential: candidate generation and pair scoring
// fan out across workers, but corpus answers — merges, match log, cluster
// structure, and every work counter — must be byte-identical to the
// serial pass at any parallelism, for every blocking mode. Run with
// -race, this is also the data-race gate for the parallel relate stage.
func TestParallelScoringDifferential(t *testing.T) {
	for _, mode := range []er.BlockingMode{er.BlockingToken, er.BlockingANN, er.BlockingBoth} {
		t.Run(mode.String(), func(t *testing.T) {
			serial := iotIngest(t, mode, 1)
			for _, par := range []int{2, 4, 8} {
				if got := iotIngest(t, mode, par); got != serial {
					t.Errorf("parallelism %d diverges from serial:\n--- serial ---\n%s\n--- par=%d ---\n%s", par, serial, par, got)
				}
			}
		})
	}
}
