package curate

import (
	"fmt"
	"testing"

	"scdb/internal/catalog"
	"scdb/internal/datagen"
	"scdb/internal/extract"
	"scdb/internal/graph"
	"scdb/internal/model"
	"scdb/internal/storage"
)

// lifesciPipeline assembles the standard pipeline over the Figure-2 data.
func lifesciPipeline(t *testing.T) (*Pipeline, *graph.Graph, *storage.Store) {
	t.Helper()
	s, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	cat, err := catalog.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	o := datagen.LifeSciOntology()
	p, err := NewPipeline(Config{
		Store:    s,
		Catalog:  cat,
		Graph:    g,
		Ontology: o,
		LinkRules: []LinkRule{
			{Predicate: "targets_symbol", EdgePredicate: "targets", TargetAttrs: []string{"symbol", "gene_symbol"}, TargetType: "Gene"},
			{Predicate: "treats_name", EdgePredicate: "treats", TargetAttrs: []string{"disease_name"}},
		},
		Patterns: []extract.Pattern{
			{Trigger: "treats", Predicate: "treats"},
			{Trigger: "targets", Predicate: "targets"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, g, s
}

func ingestLifeSci(t *testing.T, p *Pipeline) {
	t.Helper()
	for _, ds := range datagen.LifeSci(1, 0, 0, 0) {
		if err := p.IngestDataset(ds); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineIngestsAllLayers(t *testing.T) {
	p, g, s := lifesciPipeline(t)
	ingestLifeSci(t, p)
	st := p.Stats()
	if st.Datasets != 3 || st.Records == 0 || st.Entities == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Instance layer: per-source tables exist with rows.
	for _, src := range []string{"drugbank", "ctd", "uniprot"} {
		tb, ok := s.Table(src)
		if !ok || tb.Len() == 0 {
			t.Errorf("table %s missing or empty", src)
		}
	}
	// Relation layer: graph populated.
	if g.NumEntities() == 0 || g.NumEdges() == 0 {
		t.Error("graph empty")
	}
}

func TestLinkDiscoveryAcrossSources(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	// DrugBank's "targets_symbol DHFR" literal must have become a real
	// edge to UniProt's DHFR entity (ingested later → retried pending).
	mtx, ok := g.FindByKey("drugbank", "DB00563")
	if !ok {
		t.Fatal("Methotrexate missing")
	}
	// Both the link rule and the text extraction may contribute an edge
	// (different provenance); the distinct target set must be one gene.
	distinct := map[model.EntityID]bool{}
	for _, id := range g.Neighbors(mtx.ID, "targets") {
		distinct[id] = true
	}
	if len(distinct) != 1 {
		t.Fatalf("Methotrexate target set = %v (discovered links: %d, pending: %d)",
			distinct, p.Stats().LinksDiscovered, p.Stats().LinksPending)
	}
	targets := g.Neighbors(mtx.ID, "targets")
	te, _ := g.Entity(targets[0])
	sym, _ := te.Attrs.Get("symbol").AsString()
	gsym, _ := te.Attrs.Get("gene_symbol").AsString()
	if sym != "DHFR" && gsym != "DHFR" {
		t.Errorf("Methotrexate target = %v", te)
	}
	if p.Stats().LinksPending != 0 {
		t.Errorf("pending links = %d, want 0 after all sources arrive", p.Stats().LinksPending)
	}
}

func TestFigure2PathReachable(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	// The Figure-2 multi-hop story: Methotrexate → DHFR ... and
	// Warfarin → TP53 → Osteosarcoma via CTD's association.
	warfarin, ok := g.FindByKey("drugbank", "DB00682")
	if !ok {
		t.Fatal("Warfarin missing")
	}
	osteo, ok := g.FindByKey("ctd", "mesh:D012516")
	if !ok {
		t.Fatal("Osteosarcoma missing")
	}
	if !g.Reaches(warfarin.ID, g.Resolve(osteo.ID), 3, "") {
		t.Error("Warfarin must reach Osteosarcoma within 3 hops (targets → associatedWith)")
	}
	path := g.Path(warfarin.ID, g.Resolve(osteo.ID), 3, "")
	if len(path) != 3 {
		t.Errorf("path = %v", path)
	}
}

func TestERMergesCrossSourceGenes(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	if p.Stats().Merges == 0 {
		t.Fatal("no ER merges despite cross-source duplicates")
	}
	// UniProt P35354 and CTD gene:PTGS2 must be one entity.
	up, ok1 := g.FindByKey("uniprot", "P35354")
	ctd, ok2 := g.FindByKey("ctd", "gene:PTGS2")
	if !ok1 || !ok2 {
		t.Fatal("gene records missing")
	}
	if up.ID != ctd.ID {
		t.Errorf("PTGS2 not merged: %d vs %d", up.ID, ctd.ID)
	}
}

func TestExtractionAddsEdges(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	if p.Stats().Extractions == 0 {
		t.Fatal("no extractions from CTD abstracts")
	}
	// "Methotrexate treats Rheumatoid Arthritis" came only from text.
	mtx, _ := g.FindByKey("drugbank", "DB00563")
	found := false
	for _, e := range g.EdgesByPredicate(mtx.ID, "treats") {
		to, ok := e.To.AsRef()
		if !ok {
			continue
		}
		te, _ := g.Entity(to)
		if n, _ := te.Attrs.Get("disease_name").AsString(); n == "Rheumatoid Arthritis" {
			found = true
			if e.Confidence >= 1 {
				t.Error("extracted edge must carry confidence < 1")
			}
		}
	}
	if !found {
		t.Error("extracted treats edge missing")
	}
}

func TestSemanticEnrichment(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	r := p.Reasoner()
	// Acetaminophen: Drug ⊑ ∃hasTarget.Gene — but the CTD abstract says it
	// targets PTGS2, so the witness must be discharged.
	ace, _ := g.FindByKey("drugbank", "DB00316")
	if w := r.Witnesses(ace.ID); len(w) != 0 {
		t.Errorf("Acetaminophen witness should be discharged by extraction: %v", w)
	}
	// Aminopterin has no target anywhere → witness stands.
	amino, _ := g.FindByKey("drugbank", "DB01118")
	if w := r.Witnesses(amino.ID); len(w) != 1 {
		t.Errorf("Aminopterin witnesses = %v, want the inferred hasTarget", w)
	}
	// Subsumption closure works end to end.
	if !r.HasType(ace.ID, "Chemical") {
		t.Error("Acetaminophen must be inferred Chemical")
	}
	// Stats flowed into the ontology for the optimizer.
	if n, ok := p.onto.InstanceCount("Drug"); !ok || n < 5 {
		t.Errorf("Drug instance count = %d %v", n, ok)
	}
}

func TestCatalogObservedSchemas(t *testing.T) {
	p, _, _ := lifesciPipeline(t)
	ingestLifeSci(t, p)
	schema := p.cat.Schema("drugbank")
	names := map[string]bool{}
	for _, a := range schema {
		names[a.Name] = true
	}
	if !names["name"] || !names["_key"] {
		t.Errorf("drugbank schema = %v", schema)
	}
}

func TestEnrichmentVersionAdvances(t *testing.T) {
	p, _, _ := lifesciPipeline(t)
	v0 := p.EnrichmentVersion()
	ingestLifeSci(t, p)
	if p.EnrichmentVersion() <= v0 {
		t.Error("enrichment version must advance on curation")
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	if _, err := NewPipeline(Config{}); err == nil {
		t.Error("empty config must fail")
	}
}

func TestPipelineAccessorsAndPolicyStrings(t *testing.T) {
	p, _, _ := lifesciPipeline(t)
	if p.Resolver() == nil {
		t.Error("Resolver accessor nil")
	}
	if PolicyRanked.String() != "ranked" || PolicyLRU.String() != "lru" {
		t.Error("MatPolicy strings broken")
	}
	if MatPolicy(7).String() != "matpolicy(7)" {
		t.Error("unknown policy string broken")
	}
	// Default capacity applies for non-positive sizes.
	c := NewMatCache(0, PolicyLRU)
	for i := 0; i < 70; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	if c.Len() != 64 {
		t.Errorf("default capacity = %d, want 64", c.Len())
	}
}

func TestLookupValueAmbiguityResolvesToLowestCanonical(t *testing.T) {
	p, g, _ := lifesciPipeline(t)
	// Two sources share a value; lookup must resolve deterministically.
	for i, src := range []string{"s1", "s2"} {
		if err := p.IngestDataset(datagen.Dataset{
			Source: src,
			Entities: []datagen.EntitySpec{{
				Key:   fmt.Sprintf("k%d", i),
				Types: []string{"Gene"},
				Attrs: model.Record{"symbol": model.String("SHARED"), "extra": model.String(fmt.Sprintf("distinct %d value", i))},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	id := p.lookupValue("SHARED")
	if id == model.NoEntity {
		t.Fatal("lookup failed")
	}
	if id != g.Resolve(id) {
		t.Error("lookup must return a canonical entity")
	}
}

// --- MatCache ----------------------------------------------------------

func TestMatCacheBasics(t *testing.T) {
	c := NewMatCache(2, PolicyLRU)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Error("Get a failed")
	}
	c.Put("c", 3, 1) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestMatCacheRankedKeepsHighBenefit(t *testing.T) {
	c := NewMatCache(2, PolicyRanked)
	c.Put("cheap", 1, 1)
	c.Put("pricey", 2, 100)
	// Touch cheap so LRU would keep it; ranked keeps pricey instead.
	c.Get("cheap")
	c.Put("new", 3, 1) // evict lowest rank: cheap has rank 2, pricey 100
	if _, ok := c.Get("pricey"); !ok {
		t.Error("high-benefit entry evicted")
	}
	if _, ok := c.Get("cheap"); ok {
		t.Error("low-benefit entry retained over high-benefit")
	}
}

func TestMatCacheUpdateAndInvalidate(t *testing.T) {
	c := NewMatCache(4, PolicyRanked)
	c.Put("k", 1, 5)
	c.Put("k", 2, 5) // update, not duplicate
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Error("update lost")
	}
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Error("invalidated entry returned")
	}
	c.Put("x", 1, 1)
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Error("InvalidateAll failed")
	}
}

func TestMatCacheHitRate(t *testing.T) {
	c := NewMatCache(8, PolicyRanked)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("q%d", i%2)
		if _, ok := c.Get(key); !ok {
			c.Put(key, i, 1)
		}
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
	if (MatStats{}).HitRate() != 0 {
		t.Error("empty hit rate must be 0")
	}
}
