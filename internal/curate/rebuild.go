package curate

import (
	"fmt"
	"sort"
	"strings"

	"scdb/internal/datagen"
	"scdb/internal/model"
	"scdb/internal/storage"
)

// Durability of the relation and semantic layers. The instance layer
// persists through the store's log; the graph, merges, and inferences are
// *derived* state. Rather than persisting the graph structurally, the
// pipeline records what it consumed — source order, link specs, and texts
// — as ordinary system rows, and Rebuild replays curation over the stored
// records on open. Entity resolution, link discovery, extraction, and
// inference re-derive the same enriched model deterministically.
//
// Non-durable by design: predicted edges (EnrichPredictedLinks) — they are
// statistical derivations, re-derivable on demand.

// System tables recording the replay inputs.
const (
	OrderTable = "_curate_order"
	LinksTable = "_curate_links"
	TextsTable = "_curate_texts"
)

// typesAttr stores an entity's asserted types inside its instance-layer
// record.
const typesAttr = "_types"

// recordIngestMeta persists what IngestDataset needs for replay. Rows go
// through the batch write path in batchSize chunks (1 = per-record, the
// serial baseline). Caller holds p.mu.
func (p *Pipeline) recordIngestMeta(ds datagen.Dataset, batchSize int) error {
	ot, err := p.store.EnsureTable(OrderTable)
	if err != nil {
		return err
	}
	if !p.seenSources[ds.Source] {
		p.seenSources[ds.Source] = true
		p.seq++
		if _, err := ot.Insert(model.Record{
			"seq":    model.Int(int64(p.seq)),
			"source": model.String(ds.Source),
		}); err != nil {
			return err
		}
	}
	if len(ds.Links) > 0 {
		lt, err := p.store.EnsureTable(LinksTable)
		if err != nil {
			return err
		}
		recs := make([]model.Record, len(ds.Links))
		for i, l := range ds.Links {
			p.seq++
			rec := model.Record{
				"seq":       model.Int(int64(p.seq)),
				"source":    model.String(ds.Source),
				"from_key":  model.String(l.FromKey),
				"predicate": model.String(l.Predicate),
				"conf":      model.Float(l.Confidence),
			}
			if l.ToKey != "" {
				rec["to_key"] = model.String(l.ToKey)
			} else {
				rec["literal"] = l.Literal
			}
			recs[i] = rec
		}
		if err := insertChunked(lt, recs, batchSize); err != nil {
			return err
		}
	}
	if len(ds.Texts) > 0 {
		tt, err := p.store.EnsureTable(TextsTable)
		if err != nil {
			return err
		}
		recs := make([]model.Record, len(ds.Texts))
		for i, text := range ds.Texts {
			p.seq++
			recs[i] = model.Record{
				"seq":    model.Int(int64(p.seq)),
				"source": model.String(ds.Source),
				"text":   model.String(text),
			}
		}
		if err := insertChunked(tt, recs, batchSize); err != nil {
			return err
		}
	}
	return nil
}

// insertChunked writes recs through InsertBatch in batchSize chunks, or
// one by one when batchSize is 1.
func insertChunked(t *storage.Table, recs []model.Record, batchSize int) error {
	if batchSize == 1 {
		for _, rec := range recs {
			if _, err := t.Insert(rec); err != nil {
				return err
			}
		}
		return nil
	}
	for lo := 0; lo < len(recs); lo += batchSize {
		hi := min(lo+batchSize, len(recs))
		if _, err := t.InsertBatch(recs[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// RebuildFromStore re-derives the relation and semantic layers from the
// instance layer: sources are replayed in first-ingest order with their
// recorded links and texts. Call once on open, before any new ingest.
func (p *Pipeline) RebuildFromStore() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	order, maxSeq, err := p.loadOrder()
	if err != nil {
		return err
	}
	if len(order) == 0 {
		return nil
	}
	links, texts, linkSeq, err := p.loadReplayInputs()
	if err != nil {
		return err
	}
	if linkSeq > maxSeq {
		maxSeq = linkSeq
	}
	var touched []model.EntityID
	for _, source := range order {
		tb, ok := p.store.Table(source)
		if !ok {
			continue
		}
		ds := datagen.Dataset{Source: source, Links: links[source], Texts: texts[source]}
		tb.Scan(func(_ storage.RowID, rec model.Record) bool {
			key, ok := rec.Get("_key").AsString()
			if !ok || key == "" {
				return true // transactional rows are instance-only
			}
			spec := datagen.EntitySpec{Key: key, Attrs: model.Record{}}
			for k, v := range rec {
				switch k {
				case "_key":
				case typesAttr:
					if l, ok := v.AsList(); ok {
						for _, tv := range l {
							if s, ok := tv.AsString(); ok {
								spec.Types = append(spec.Types, s)
							}
						}
					}
				default:
					spec.Attrs[k] = v
				}
			}
			ds.Entities = append(ds.Entities, spec)
			return true
		})
		if err := p.replayDataset(ds, &touched); err != nil {
			return fmt.Errorf("curate: rebuild of %q: %w", source, err)
		}
	}
	p.seq = maxSeq
	p.reasoner.MaterializeEntities(touched)
	p.refreshConceptStats()
	return nil
}

// loadOrder reads the first-ingest order of sources.
func (p *Pipeline) loadOrder() ([]string, int, error) {
	tb, ok := p.store.Table(OrderTable)
	if !ok {
		return nil, 0, nil
	}
	type entry struct {
		seq    int64
		source string
	}
	var entries []entry
	maxSeq := 0
	tb.Scan(func(_ storage.RowID, rec model.Record) bool {
		seq, _ := rec.Get("seq").AsInt()
		src, _ := rec.Get("source").AsString()
		if src != "" {
			entries = append(entries, entry{seq, src})
		}
		if int(seq) > maxSeq {
			maxSeq = int(seq)
		}
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.source)
	}
	return out, maxSeq, nil
}

// loadReplayInputs reads the recorded link specs and texts per source.
func (p *Pipeline) loadReplayInputs() (map[string][]datagen.LinkSpec, map[string][]string, int, error) {
	links := map[string][]datagen.LinkSpec{}
	texts := map[string][]string{}
	maxSeq := 0
	type seqLink struct {
		seq  int64
		spec datagen.LinkSpec
	}
	bySource := map[string][]seqLink{}
	if tb, ok := p.store.Table(LinksTable); ok {
		tb.Scan(func(_ storage.RowID, rec model.Record) bool {
			seq, _ := rec.Get("seq").AsInt()
			src, _ := rec.Get("source").AsString()
			spec := datagen.LinkSpec{}
			spec.FromKey, _ = rec.Get("from_key").AsString()
			spec.Predicate, _ = rec.Get("predicate").AsString()
			spec.ToKey, _ = rec.Get("to_key").AsString()
			spec.Literal = rec.Get("literal")
			conf, _ := rec.Get("conf").AsFloat()
			spec.Confidence = conf
			bySource[src] = append(bySource[src], seqLink{seq, spec})
			if int(seq) > maxSeq {
				maxSeq = int(seq)
			}
			return true
		})
	}
	for src, sl := range bySource {
		sort.Slice(sl, func(i, j int) bool { return sl[i].seq < sl[j].seq })
		for _, l := range sl {
			links[src] = append(links[src], l.spec)
		}
	}
	type seqText struct {
		seq  int64
		text string
	}
	textBySource := map[string][]seqText{}
	if tb, ok := p.store.Table(TextsTable); ok {
		tb.Scan(func(_ storage.RowID, rec model.Record) bool {
			seq, _ := rec.Get("seq").AsInt()
			src, _ := rec.Get("source").AsString()
			text, _ := rec.Get("text").AsString()
			textBySource[src] = append(textBySource[src], seqText{seq, text})
			if int(seq) > maxSeq {
				maxSeq = int(seq)
			}
			return true
		})
	}
	for src, st := range textBySource {
		sort.Slice(st, func(i, j int) bool { return st[i].seq < st[j].seq })
		for _, t := range st {
			texts[src] = append(texts[src], t.text)
		}
	}
	return links, texts, maxSeq, nil
}

// IsSystemTable reports whether the name belongs to the engine's internal
// bookkeeping (catalog or curation replay tables).
func IsSystemTable(name string) bool {
	return strings.HasPrefix(name, "_catalog") || strings.HasPrefix(name, "_curate") || strings.HasPrefix(name, "_claims")
}
