package query

import (
	"fmt"
	"strconv"
	"strings"

	"scdb/internal/model"
)

// Parse parses one SCQL SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	trace := p.accept(tokKeyword, "TRACE")
	explain, analyze := false, false
	if p.accept(tokKeyword, "EXPLAIN") {
		if trace {
			return nil, p.errf("TRACE cannot be combined with EXPLAIN")
		}
		explain = true
		analyze = p.accept(tokKeyword, "ANALYZE")
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Trace = trace
	stmt.Explain = explain
	stmt.Analyze = analyze
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	if p.accept(tokKeyword, "DISTINCT") {
		stmt.Distinct = true
	}
	if p.accept(tokOp, "*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				id, err := p.parseName()
				if err != nil {
					return nil, err
				}
				item.Alias = id
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	for p.accept(tokKeyword, "JOIN") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.text)
		}
		stmt.Limit = n
	}

	for p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "SEMANTICS"); err != nil {
			return nil, err
		}
		stmt.Semantics = true
	}

	if p.accept(tokKeyword, "UNDER") {
		switch {
		case p.accept(tokKeyword, "CERTAIN"):
			stmt.Mode = AnswerCertain
		case p.accept(tokKeyword, "FUZZY"):
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			t, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, p.errf("invalid FUZZY threshold %q", t.text)
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			stmt.Mode = AnswerFuzzy
			stmt.FuzzyThreshold = f
		default:
			return nil, p.errf("expected CERTAIN or FUZZY after UNDER")
		}
	}
	// Allow trailing WITH SEMANTICS after UNDER as well.
	for p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "SEMANTICS"); err != nil {
			return nil, err
		}
		stmt.Semantics = true
	}
	return stmt, nil
}

// parseName parses an identifier or quoted identifier.
func (p *parser) parseName() (string, error) {
	if p.at(tokIdent, "") || p.at(tokQuoted, "") {
		t := p.next()
		if t.text == "" {
			return "", p.errf("empty quoted identifier")
		}
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseName()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.parseName()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar: OR < AND < NOT < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokOp, "=") || p.at(tokOp, "!=") || p.at(tokOp, "<") ||
		p.at(tokOp, "<=") || p.at(tokOp, ">") || p.at(tokOp, ">="):
		op := p.next().text
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	case p.accept(tokKeyword, "IS"):
		negate := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: negate}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var vals []model.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InList{X: l, Vals: vals}, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: t.text}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated numeric literal so "-116" round-trips as one
		// literal rather than a unary expression.
		if l, ok := x.(*Literal); ok {
			if i, ok := l.Val.AsInt(); ok {
				return &Literal{Val: model.Int(-i)}, nil
			}
			if f, ok := l.Val.AsFloat(); ok {
				return &Literal{Val: model.Float(-f)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parseLiteralValue() (model.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return numberValue(t.text)
	case t.kind == tokString:
		p.next()
		return model.String(t.text), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return model.Null(), nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return model.Bool(t.text == "TRUE"), nil
	case t.kind == tokOp && t.text == "-":
		p.next()
		v, err := p.parseLiteralValue()
		if err != nil {
			return model.Value{}, err
		}
		if i, ok := v.AsInt(); ok {
			return model.Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return model.Float(-f), nil
		}
		return model.Value{}, p.errf("cannot negate %s", v)
	}
	return model.Value{}, p.errf("expected literal, found %q", t.text)
}

func numberValue(text string) (model.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return model.Value{}, fmt.Errorf("query: bad number %q", text)
		}
		return model.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return model.Value{}, fmt.Errorf("query: bad number %q", text)
	}
	return model.Int(i), nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber, t.kind == tokString,
		t.kind == tokKeyword && (t.text == "NULL" || t.text == "TRUE" || t.text == "FALSE"):
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent || t.kind == tokQuoted:
		name := p.next().text
		// Function call?
		if p.accept(tokOp, "(") {
			call := &Call{Name: strings.ToUpper(name)}
			if p.accept(tokOp, "*") {
				call.Star = true
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.accept(tokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokOp, ",") {
						break
					}
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			col, err := p.parseName()
			if err != nil {
				return nil, err
			}
			return &ColRef{Binding: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
