package query

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"scdb/internal/model"
)

// endlessEnv streams the "endless" table forever — until the executor's
// emit returns false. It is the fixture for cancellation tests: a query
// over it can only finish by being canceled.
type endlessEnv struct {
	*fakeEnv
	emitted atomic.Int64
	stopped atomic.Bool
	// onEmit, when set, runs after every emitted morsel (used to trigger
	// cancellation from inside the stream).
	onEmit func(n int64)
	// emitDelay throttles the producer (deadline tests).
	emitDelay time.Duration
}

func (e *endlessEnv) ScanTableMorsels(name string, size int, emit func([]model.Record) bool) bool {
	if name != "endless" {
		recs, ok := e.fakeEnv.ScanTable(name)
		if !ok {
			return false
		}
		emit(recs)
		return true
	}
	if size <= 0 {
		size = DefaultMorselSize
	}
	for i := int64(0); ; i++ {
		recs := make([]model.Record, size)
		for j := range recs {
			recs[j] = model.Record{"x": model.Int(i), "name": model.String("row")}
		}
		if e.emitDelay > 0 {
			time.Sleep(e.emitDelay)
		}
		if !emit(recs) {
			e.stopped.Store(true)
			return true
		}
		n := e.emitted.Add(1)
		if e.onEmit != nil {
			e.onEmit(n)
		}
	}
}

func (e *endlessEnv) ScanConceptMorsels(concept string, semantic bool, size int, emit func([]model.Record) bool) bool {
	recs, ok := e.fakeEnv.ScanConcept(concept, semantic)
	if !ok {
		return false
	}
	emit(recs)
	return true
}

func newEndlessEnv() *endlessEnv {
	e := &endlessEnv{fakeEnv: env()}
	// Register the table name so the planner resolves FROM endless.
	e.fakeEnv.tables["endless"] = []model.Record{{"x": model.Int(0)}}
	return e
}

func planFor(t *testing.T, e Resolver, src string) Node {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	plan, err := BuildPlan(stmt, e)
	if err != nil {
		t.Fatalf("BuildPlan(%q): %v", src, err)
	}
	return plan
}

// TestCancelStopsExecutor: canceling the context mid-query makes every
// worker exit within one morsel boundary and unwinds the scan producer —
// the query over an endless stream returns context.Canceled instead of
// running forever.
func TestCancelStopsExecutor(t *testing.T) {
	e := newEndlessEnv()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.onEmit = func(n int64) {
		if n == 8 {
			cancel()
		}
	}
	plan := planFor(t, e, "SELECT COUNT(*) AS n FROM endless WHERE x >= 0")
	start := time.Now()
	res, _, err := ExecuteOpts(plan, e, ExecOptions{Parallelism: 4, MorselSize: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled query returned a result")
	}
	// ExecuteOpts joins all workers and producers before returning, so by
	// now the endless scan must have unwound via emit returning false.
	if !e.stopped.Load() {
		t.Error("scan producer did not stop")
	}
	// The producer may run ahead by the channel buffer plus the stage
	// backpressure window, but not unboundedly.
	if n := e.emitted.Load(); n > 512 {
		t.Errorf("producer emitted %d morsels after cancellation", n)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestDeadlineStopsExecutor: a context deadline behaves like cancellation,
// surfacing context.DeadlineExceeded within a morsel boundary.
func TestDeadlineStopsExecutor(t *testing.T) {
	e := newEndlessEnv()
	e.emitDelay = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	plan := planFor(t, e, "SELECT x FROM endless WHERE x >= 0")
	_, _, err := ExecuteOpts(plan, e, ExecOptions{Parallelism: 2, MorselSize: 8, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !e.stopped.Load() {
		t.Error("scan producer did not stop")
	}
}

// TestCancelBeforeExecute: an already-canceled context fails fast without
// emitting more than the pipeline's initial prefetch.
func TestCancelBeforeExecute(t *testing.T) {
	e := newEndlessEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := planFor(t, e, "SELECT x FROM endless")
	_, _, err := ExecuteOpts(plan, e, ExecOptions{Parallelism: 4, MorselSize: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := e.emitted.Load(); n > 64 {
		t.Errorf("pre-canceled query emitted %d morsels", n)
	}
}

// TestCancelDuringAggregate: the parMap fan-in path (aggregation partials)
// observes cancellation too.
func TestCancelDuringAggregate(t *testing.T) {
	e := newEndlessEnv()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.onEmit = func(n int64) {
		if n == 4 {
			cancel()
		}
	}
	plan := planFor(t, e, "SELECT x, COUNT(*) AS n FROM endless GROUP BY x")
	_, _, err := ExecuteOpts(plan, e, ExecOptions{Parallelism: 4, MorselSize: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNilCtxBackground: a nil Ctx means no cancellation — results match the
// plain path (regression guard for the default).
func TestNilCtxBackground(t *testing.T) {
	res, err := runOpts(t, "SELECT name FROM drugs ORDER BY name", ExecOptions{Parallelism: 4, MorselSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}
