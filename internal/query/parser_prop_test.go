package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scdb/internal/model"
)

// randomExpr builds a random expression of bounded depth using only
// constructs with stable canonical forms.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Literal{Val: model.Int(r.Int63n(1000) - 500)}
		case 1:
			return &Literal{Val: model.String([]string{"a", "it's", "x y", ""}[r.Intn(4)])}
		case 2:
			return &ColRef{Name: []string{"name", "dose", "gene"}[r.Intn(3)]}
		default:
			return &ColRef{Binding: "t", Name: []string{"name", "dose"}[r.Intn(2)]}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &Binary{Op: []string{"+", "-", "*", "/"}[r.Intn(4)], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &Binary{Op: []string{"=", "!=", "<", "<=", ">", ">="}[r.Intn(6)], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 2:
		return &Binary{Op: []string{"AND", "OR"}[r.Intn(2)], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 3:
		return &Unary{Op: "NOT", X: randomExpr(r, depth-1)}
	case 4:
		return &IsNull{X: randomExpr(r, depth-1), Negate: r.Intn(2) == 1}
	case 5:
		return &InList{X: randomExpr(r, depth-1), Vals: []model.Value{model.Int(1), model.String("v")}}
	case 6:
		return &Like{X: randomExpr(r, depth-1), Pattern: "a%_'b"}
	default:
		return &Call{Name: "COALESCE", Args: []Expr{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	}
}

// TestPropertyExprRoundTrip: rendering a random expression and re-parsing
// it yields the same canonical form — the property the refinement engine
// (which manipulates statements as strings) depends on.
func TestPropertyExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		stmt := &SelectStmt{Star: true, From: TableRef{Name: "t"}, Where: e, Limit: -1}
		src := stmt.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("parse(%q): %v", src, err)
			return false
		}
		if parsed.String() != src {
			t.Logf("unstable canonical form:\n  %s\n  %s", src, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatementRoundTrip exercises whole statements with random
// clause combinations.
func TestPropertyStatementRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stmt := &SelectStmt{From: TableRef{Name: "drugs", Alias: "d"}, Limit: -1}
		if r.Intn(2) == 0 {
			stmt.Star = true
		} else {
			stmt.Items = []SelectItem{{Expr: randomExpr(r, 2)}, {Expr: randomExpr(r, 1), Alias: "x"}}
		}
		if r.Intn(2) == 0 {
			stmt.Distinct = true
		}
		if r.Intn(2) == 0 {
			stmt.Where = randomExpr(r, 2)
		}
		if !stmt.Star && r.Intn(2) == 0 {
			stmt.GroupBy = []Expr{randomExpr(r, 1)}
			if r.Intn(2) == 0 {
				stmt.Having = randomExpr(r, 1)
			}
		}
		if r.Intn(2) == 0 {
			stmt.OrderBy = []OrderKey{{Expr: randomExpr(r, 1), Desc: r.Intn(2) == 0}}
		}
		if r.Intn(2) == 0 {
			stmt.Limit = r.Intn(100)
		}
		if r.Intn(2) == 0 {
			stmt.Semantics = true
		}
		switch r.Intn(3) {
		case 1:
			stmt.Mode = AnswerCertain
		case 2:
			stmt.Mode = AnswerFuzzy
			stmt.FuzzyThreshold = 0.5
		}
		src := stmt.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("parse(%q): %v", src, err)
			return false
		}
		if parsed.String() != src {
			t.Logf("unstable:\n  %s\n  %s", src, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
