// Package query implements SCQL, the unified query language of the
// self-curating database (paper FS.5): one declarative language combining
// relational selection/projection/join/aggregation, semantic predicates
// that consult the ontology and reasoner (ISA), graph-traversal predicates
// over the relation layer (REACHES, LINKED), and fuzzy closeness (CLOSE),
// with answer-semantics modifiers (UNDER CERTAIN / UNDER FUZZY t) for
// queries over parallel worlds.
//
// The package provides the lexer, parser, logical plan, and executor; the
// optimizer package rewrites plans using the semantic layer (OS.3).
package query

import (
	"fmt"
	"strings"

	"scdb/internal/model"
)

// Expr is a SCQL expression.
type Expr interface {
	fmt.Stringer
}

// Literal is a constant value.
type Literal struct {
	Val model.Value
}

func (l *Literal) String() string { return sqlValue(l.Val) }

// sqlValue renders a value in SCQL literal syntax (single-quoted strings
// with ” escaping); other kinds use their natural rendering.
func sqlValue(v model.Value) string {
	if s, ok := v.AsString(); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return v.String()
}

// ColRef references a column, optionally qualified by a binding (table
// alias).
type ColRef struct {
	Binding string
	Name    string
}

func (c *ColRef) String() string {
	if c.Binding != "" {
		return quoteName(c.Binding) + "." + quoteName(c.Name)
	}
	return quoteName(c.Name)
}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-" or "NOT"
	X  Expr
}

func (u *Unary) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=), or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

func (b *Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// IsNull is "x IS NULL" (or IS NOT NULL when Negate).
type IsNull struct {
	X      Expr
	Negate bool
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.X)
	}
	return fmt.Sprintf("(%s IS NULL)", i.X)
}

// InList is "x IN (v1, v2, ...)".
type InList struct {
	X    Expr
	Vals []model.Value
}

func (i *InList) String() string {
	parts := make([]string, len(i.Vals))
	for j, v := range i.Vals {
		parts[j] = sqlValue(v)
	}
	return fmt.Sprintf("(%s IN (%s))", i.X, strings.Join(parts, ", "))
}

// Like is "x LIKE pattern" with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern string
}

func (l *Like) String() string {
	return fmt.Sprintf("(%s LIKE %s)", l.X, sqlValue(model.String(l.Pattern)))
}

// Call is a function call: aggregates (COUNT, SUM, AVG, MIN, MAX) and the
// semantic/graph builtins (ISA, REACHES, LINKED, CLOSE, TYPES).
type Call struct {
	Name string // canonical upper case
	Args []Expr
	Star bool // COUNT(*)
}

func (c *Call) String() string {
	if c.Star {
		return c.Name + "(*)"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Label returns the output column name.
func (s SelectItem) Label() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Expr.String()
}

// TableRef names a FROM or JOIN source with an optional alias. The name
// resolves to a storage table or, failing that, an ontology concept
// (scanning the entities holding it) — the unification of tabular and
// semantic data in one FROM clause.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name expressions use to reference this source.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ....
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// AnswerMode selects the answer semantics for queries over conflicting
// parallel worlds (Section 4.2).
type AnswerMode int

const (
	// AnswerDefault returns all rows that satisfy the query.
	AnswerDefault AnswerMode = iota
	// AnswerCertain keeps only answers every world supports.
	AnswerCertain
	// AnswerFuzzy keeps answers justified to at least Stmt.FuzzyThreshold
	// in some world.
	AnswerFuzzy
)

// SelectStmt is a parsed SCQL SELECT.
type SelectStmt struct {
	Star     bool
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 when absent

	// Explain is set by an EXPLAIN prefix: return the plan instead of
	// rows. Analyze (EXPLAIN ANALYZE) additionally executes the statement
	// and reports per-operator runtime statistics.
	Explain bool
	Analyze bool

	// Trace is set by a TRACE prefix: execute the statement and return
	// its hierarchical span tree (plan, execution, per-operator timings)
	// as a JSON document instead of rows.
	Trace bool

	// Semantics is set by WITH SEMANTICS: ISA consults inferred types and
	// the optimizer may use semantic rewrites.
	Semantics bool
	// Mode and FuzzyThreshold come from UNDER CERTAIN / UNDER FUZZY(t).
	Mode           AnswerMode
	FuzzyThreshold float64
}

// String reassembles a canonical form of the statement (for EXPLAIN and
// the refinement engine, which manipulates statements programmatically).
func (s *SelectStmt) String() string {
	var b strings.Builder
	if s.Trace {
		b.WriteString("TRACE ")
	}
	if s.Explain {
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
	}
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		parts := make([]string, len(s.Items))
		for i, it := range s.Items {
			parts[i] = it.Expr.String()
			if it.Alias != "" {
				parts[i] += " AS " + quoteName(it.Alias)
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM " + quoteName(s.From.Name))
	if s.From.Alias != "" {
		b.WriteString(" AS " + quoteName(s.From.Alias))
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + quoteName(j.Table.Name))
		if j.Table.Alias != "" {
			b.WriteString(" AS " + quoteName(j.Table.Alias))
		}
		b.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Semantics {
		b.WriteString(" WITH SEMANTICS")
	}
	switch s.Mode {
	case AnswerCertain:
		b.WriteString(" UNDER CERTAIN")
	case AnswerFuzzy:
		fmt.Fprintf(&b, " UNDER FUZZY(%g)", s.FuzzyThreshold)
	}
	return b.String()
}

// quoteName wraps any name that would not lex back as a plain identifier
// (spaces, punctuation, leading digits, keywords) in double quotes.
func quoteName(n string) string {
	if isPlainIdent(n) {
		return n
	}
	return `"` + n + `"`
}

func isPlainIdent(n string) bool {
	if n == "" || keywords[strings.ToUpper(n)] {
		return false
	}
	for i, r := range n {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
