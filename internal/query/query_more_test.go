package query

import (
	"strings"
	"testing"

	"scdb/internal/model"
)

// Additional coverage: unary ops, OR/NOT, literal edge cases, TYPES and
// LINKED, aggregate arithmetic, and Explain labels.

func TestUnaryNegationAndNot(t *testing.T) {
	res := mustRun(t, "SELECT -dose AS neg FROM drugs WHERE name = 'Warfarin'")
	if f, _ := res.Rows[0][0].AsFloat(); f != -5.1 {
		t.Errorf("neg = %v", res.Rows[0][0])
	}
	res = mustRun(t, "SELECT name FROM drugs WHERE NOT (dose > 6)")
	// Warfarin (5.1) qualifies; Mystery's null comparison is Unknown and
	// NOT Unknown stays Unknown — dropped.
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Warfarin")) {
		t.Errorf("NOT rows = %v", res.Rows)
	}
	// Double negation of an integer literal.
	res = mustRun(t, "SELECT -(-3) AS x FROM drugs LIMIT 1")
	if v, _ := res.Rows[0][0].AsInt(); v != 3 {
		t.Errorf("-(-3) = %v", res.Rows[0][0])
	}
	if _, err := runQuery("SELECT -name FROM drugs"); err == nil {
		t.Error("negating a string must fail")
	}
	if _, err := runQuery("SELECT name FROM drugs WHERE NOT name"); err == nil {
		t.Error("NOT over a string must fail")
	}
}

func TestOrShortCircuitAndThreeValued(t *testing.T) {
	// TRUE OR <error-free unknown> = TRUE even when dose is null.
	res := mustRun(t, "SELECT name FROM drugs WHERE name = 'Mystery' OR dose > 1000")
	if len(res.Rows) != 1 {
		t.Errorf("OR rows = %v", res.Rows)
	}
	// Unknown OR False = Unknown → dropped.
	res = mustRun(t, "SELECT name FROM drugs WHERE dose > 1000 OR name = 'Nope'")
	if len(res.Rows) != 0 {
		t.Errorf("unknown OR false rows = %v", res.Rows)
	}
}

func TestLiteralForms(t *testing.T) {
	res := mustRun(t, "SELECT name FROM drugs WHERE TRUE AND name = 'Warfarin'")
	if len(res.Rows) != 1 {
		t.Errorf("TRUE literal rows = %v", res.Rows)
	}
	res = mustRun(t, "SELECT name FROM drugs WHERE FALSE OR name = 'Warfarin'")
	if len(res.Rows) != 1 {
		t.Errorf("FALSE literal rows = %v", res.Rows)
	}
	// NULL literal in a comparison: no row qualifies.
	res = mustRun(t, "SELECT name FROM drugs WHERE dose = NULL")
	if len(res.Rows) != 0 {
		t.Errorf("= NULL rows = %v", res.Rows)
	}
	// Negative literals in IN lists.
	res = mustRun(t, "SELECT name FROM drugs WHERE dose IN (-1, 5.1)")
	if len(res.Rows) != 1 {
		t.Errorf("negative IN rows = %v", res.Rows)
	}
	// NULL in an IN list makes non-matches Unknown, not False.
	res = mustRun(t, "SELECT name FROM drugs WHERE dose IN (NULL, 5.1)")
	if len(res.Rows) != 1 {
		t.Errorf("IN with NULL rows = %v", res.Rows)
	}
}

func TestTypesFunction(t *testing.T) {
	res := mustRun(t, "SELECT TYPES(id) AS ts FROM drugs WHERE name = 'Warfarin'")
	l, ok := res.Rows[0][0].AsList()
	if !ok || len(l) != 1 || !model.Equal(l[0], model.String("Drug")) {
		t.Errorf("TYPES = %v", res.Rows[0][0])
	}
	res = mustRun(t, "SELECT TYPES(id) AS ts FROM drugs WHERE name = 'Warfarin' WITH SEMANTICS")
	if l, _ := res.Rows[0][0].AsList(); len(l) != 2 {
		t.Errorf("semantic TYPES = %v", res.Rows[0][0])
	}
	// LENGTH over the list.
	res = mustRun(t, "SELECT LENGTH(TYPES(id)) AS n FROM drugs WHERE name = 'Warfarin' WITH SEMANTICS")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("LENGTH(TYPES) = %v", res.Rows[0][0])
	}
}

func TestPredictFunction(t *testing.T) {
	res := mustRun(t, "SELECT PREDICT(id) AS p FROM drugs WHERE name = 'Warfarin'")
	if !model.Equal(res.Rows[0][0], model.String("Drug")) {
		t.Errorf("PREDICT = %v", res.Rows[0][0])
	}
	// Non-ref argument yields null (dropped by comparisons, no error).
	res = mustRun(t, "SELECT name FROM drugs WHERE PREDICT(name) = 'Drug'")
	if len(res.Rows) != 0 {
		t.Errorf("PREDICT over string rows = %v", res.Rows)
	}
	if _, err := runQuery("SELECT PREDICT(id, id) FROM drugs"); err == nil {
		t.Error("PREDICT arity must be checked")
	}
}

func TestLinkedFunction(t *testing.T) {
	// fakeEnv's Linked: a+1 == b.
	res := mustRun(t, "SELECT a.name, b.name FROM drugs AS a JOIN drugs AS b ON LINKED(a.id, b.id)")
	if len(res.Rows) != 3 {
		t.Errorf("LINKED join rows = %v", res.Rows)
	}
	if _, err := runQuery("SELECT name FROM drugs WHERE LINKED(id)"); err == nil {
		t.Error("LINKED arity must be checked")
	}
}

func TestAggregateArithmetic(t *testing.T) {
	res := mustRun(t, "SELECT MAX(dose) - MIN(dose) AS spread FROM drugs")
	if f, _ := res.Rows[0][0].AsFloat(); f < 194.8 || f > 195 {
		t.Errorf("spread = %v", res.Rows[0][0])
	}
	res = mustRun(t, "SELECT COUNT(*) * 2 AS double FROM drugs")
	if n, _ := res.Rows[0][0].AsInt(); n != 8 {
		t.Errorf("COUNT*2 = %v", res.Rows[0][0])
	}
	res = mustRun(t, "SELECT COUNT(dose) AS n FROM drugs")
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("COUNT(dose) skips nulls: %v", res.Rows[0][0])
	}
	if _, err := runQuery("SELECT SUM(name) FROM drugs"); err == nil {
		t.Error("SUM over strings must fail")
	}
	if _, err := runQuery("SELECT SUM(*) FROM drugs"); err == nil {
		t.Error("SUM(*) must fail")
	}
	if _, err := runQuery("SELECT COUNT(name, dose) FROM drugs"); err == nil {
		t.Error("aggregate arity must be checked")
	}
}

func TestGroupByMinMaxStrings(t *testing.T) {
	res := mustRun(t, "SELECT MIN(name) AS lo, MAX(name) AS hi FROM drugs")
	if !model.Equal(res.Rows[0][0], model.String("Ibuprofen")) {
		t.Errorf("MIN(name) = %v", res.Rows[0][0])
	}
	if !model.Equal(res.Rows[0][1], model.String("Warfarin")) {
		t.Errorf("MAX(name) = %v", res.Rows[0][1])
	}
	// Aggregates over an empty group input are null.
	res = mustRun(t, "SELECT MIN(dose) AS lo FROM drugs WHERE dose > 99999")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("MIN over empty = %v", res.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	res := mustRun(t, "SELECT DISTINCT gene FROM targets ORDER BY gene")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct genes = %v", res.Rows)
	}
	if !model.Equal(res.Rows[0][0], model.String("DHFR")) {
		t.Errorf("first = %v", res.Rows[0])
	}
	// Without DISTINCT the duplicate appears.
	res = mustRun(t, "SELECT gene FROM targets")
	if len(res.Rows) != 4 {
		t.Errorf("plain genes = %v", res.Rows)
	}
	// DISTINCT respects LIMIT after dedup.
	res = mustRun(t, "SELECT DISTINCT gene FROM targets ORDER BY gene LIMIT 2")
	if len(res.Rows) != 2 {
		t.Errorf("distinct+limit = %v", res.Rows)
	}
	// DISTINCT * over the full row.
	res = mustRun(t, "SELECT DISTINCT * FROM targets")
	if len(res.Rows) != 4 {
		t.Errorf("distinct star = %v", res.Rows)
	}
	// Canonical form round-trips.
	stmt, err := Parse("SELECT DISTINCT gene FROM targets")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.String(), "SELECT DISTINCT") {
		t.Errorf("canonical = %s", stmt.String())
	}
	if _, err := Parse(stmt.String()); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}

func TestHaving(t *testing.T) {
	res := mustRun(t, "SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("PTGS2")) {
		t.Fatalf("HAVING rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("count = %v", res.Rows[0][1])
	}
	// HAVING over a non-aggregate group expression.
	res = mustRun(t, "SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene HAVING gene = 'DHFR'")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("DHFR")) {
		t.Errorf("HAVING group expr rows = %v", res.Rows)
	}
	// HAVING without aggregation is rejected at planning.
	if _, err := runQuery("SELECT name FROM drugs HAVING name = 'x'"); err == nil {
		t.Error("HAVING without GROUP BY must fail")
	}
	// Canonical form round-trips.
	stmt, _ := Parse("SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene HAVING COUNT(*) > 1 ORDER BY n")
	if _, err := Parse(stmt.String()); err != nil {
		t.Errorf("re-parse of %q: %v", stmt.String(), err)
	}
}

func TestDistinctWithAggregates(t *testing.T) {
	// Two groups share count 1 — DISTINCT over the counts collapses them.
	res := mustRun(t, "SELECT DISTINCT COUNT(*) AS n FROM targets GROUP BY gene ORDER BY n")
	if len(res.Rows) != 2 {
		t.Errorf("distinct counts = %v", res.Rows)
	}
}

func TestExplainLabelsAllNodes(t *testing.T) {
	stmt, err := Parse(`SELECT gene, COUNT(*) AS n FROM targets AS t JOIN drugs AS d ON d.name = t.drug WHERE d.dose > 0 GROUP BY gene ORDER BY n LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(stmt, env())
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(plan)
	for _, want := range []string{"Limit 2", "Sort", "Aggregate", "GROUP BY", "Join ON", "Filter", "Scan targets AS t", "Scan drugs AS d"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
	// ConceptScan and Empty labels.
	cs := &ConceptScanNode{Concept: "Drug", Binding: "d", Semantic: true}
	if !strings.Contains(cs.Label(), "inferred") {
		t.Errorf("ConceptScan label = %q", cs.Label())
	}
	cs.Semantic = false
	if !strings.Contains(cs.Label(), "asserted") {
		t.Errorf("ConceptScan label = %q", cs.Label())
	}
	e := &EmptyNode{Reason: "why"}
	if !strings.Contains(e.Label(), "why") {
		t.Errorf("Empty label = %q", e.Label())
	}
}

func TestStatementStringQuoting(t *testing.T) {
	stmt, err := Parse(`SELECT name FROM "my table" AS t WHERE name = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.String()
	if !strings.Contains(s, `"my table"`) {
		t.Errorf("quoted table lost: %s", s)
	}
	if !strings.Contains(s, `'it''s'`) {
		t.Errorf("escaped string lost: %s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Errorf("canonical form unparseable: %v", err)
	}
}

func TestLineComments(t *testing.T) {
	res := mustRun(t, `SELECT name -- project just the name
FROM drugs -- the drug table
WHERE name = 'Warfarin' -- one row`)
	if len(res.Rows) != 1 {
		t.Errorf("commented query rows = %v", res.Rows)
	}
	// A comment can swallow the rest of a single-line query safely.
	if _, err := Parse("SELECT name FROM drugs -- WHERE nonsense ("); err != nil {
		t.Errorf("trailing comment must be ignored: %v", err)
	}
	// Subtraction still works.
	res = mustRun(t, "SELECT dose - 1 AS d FROM drugs WHERE name = 'Warfarin'")
	if f, _ := res.Rows[0][0].AsFloat(); f < 4.09 || f > 4.11 {
		t.Errorf("dose - 1 = %v", res.Rows[0][0])
	}
}

func TestStringConcat(t *testing.T) {
	res := mustRun(t, "SELECT name + '!' AS x FROM drugs WHERE name = 'Warfarin'")
	if !model.Equal(res.Rows[0][0], model.String("Warfarin!")) {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}

func TestCloseArgErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT CLOSE(dose) FROM drugs",
		"SELECT CLOSE(name, 1, 1) FROM drugs WHERE name = 'Warfarin'",
		"SELECT REACHES(id, 5, 2) FROM drugs",
		"SELECT REACHES(id, 'x', 'y') FROM drugs",
		"SELECT TYPES(id, id) FROM drugs",
		"SELECT LOWER(name, name) FROM drugs",
		"SELECT ABS(name) FROM drugs",
	} {
		if _, err := runQuery(q); err == nil {
			t.Errorf("%q must fail", q)
		}
	}
}
