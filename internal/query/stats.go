package query

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpStats is one node of the per-operator runtime statistics tree built by
// ExecuteOpts, mirroring the plan tree. Counters are updated with atomics
// because several workers tally into the same node concurrently. Elapsed is
// the operator's busy time summed over all workers (so it can exceed wall
// clock on a parallel run, exactly like MonetDB's per-operator profile).
type OpStats struct {
	Label    string
	RowsIn   int64
	RowsOut  int64
	Morsels  int64
	Elapsed  time.Duration
	Children []*OpStats

	// Access-path counters, populated by IndexScan operators. ShowPruned
	// distinguishes "prunable operator, zero pruned" from operators where
	// pruning does not apply. Written by the scan producer before the
	// executor joins it, so plain fields are safe.
	ShowPruned bool
	Pruned     int64  // zone-map segments (morsels) skipped before workers
	IndexName  string // secondary index used, "" for a plain zone scan
}

func newOpStats(n Node) *OpStats { return &OpStats{Label: n.Label()} }

// tally records one morsel's worth of work.
func (s *OpStats) tally(in, out int, d time.Duration) {
	atomic.AddInt64(&s.RowsIn, int64(in))
	atomic.AddInt64(&s.RowsOut, int64(out))
	atomic.AddInt64(&s.Morsels, 1)
	atomic.AddInt64((*int64)(&s.Elapsed), int64(d))
}

// tallyRows records row counts and time without counting a morsel (used for
// pipeline-breaker phases that work on the whole input at once).
func (s *OpStats) tallyRows(in, out int, d time.Duration) {
	atomic.AddInt64(&s.RowsIn, int64(in))
	atomic.AddInt64(&s.RowsOut, int64(out))
	atomic.AddInt64((*int64)(&s.Elapsed), int64(d))
}

// Render formats the stats tree like Explain, one node per line with the
// runtime counters appended — the body of EXPLAIN ANALYZE.
func (s *OpStats) Render() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *OpStats) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Label)
	fmt.Fprintf(b, "  (in=%d out=%d morsels=%d",
		atomic.LoadInt64(&s.RowsIn), atomic.LoadInt64(&s.RowsOut),
		atomic.LoadInt64(&s.Morsels))
	if s.ShowPruned {
		fmt.Fprintf(b, " pruned=%d", s.Pruned)
	}
	fmt.Fprintf(b, " time=%s)",
		time.Duration(atomic.LoadInt64((*int64)(&s.Elapsed))).Round(time.Microsecond))
	if s.IndexName != "" {
		fmt.Fprintf(b, "  index: %s", s.IndexName)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}
