package query

import (
	"fmt"
	"strings"

	"scdb/internal/model"
)

// Env is what the executor needs from the database: tabular scans from the
// instance layer, concept scans and semantic predicates from the relation
// and semantic layers. The core package implements it over the real engine;
// tests implement it over fixtures.
type Env interface {
	// ScanTable returns the records of a storage table, reporting whether
	// the table exists.
	ScanTable(name string) ([]model.Record, bool)
	// ScanConcept returns one record per entity holding the concept
	// (attributes plus "_id" ref and "_key"), reporting whether the
	// concept is known. With semantic=false only asserted types count.
	ScanConcept(concept string, semantic bool) ([]model.Record, bool)
	// IsA reports whether the entity reference holds the concept.
	IsA(v model.Value, concept string, semantic bool) model.Truth
	// Reaches reports whether the entity reference reaches the entity
	// named target (by key or name) within k hops over pred ("" = any).
	Reaches(from model.Value, target string, k int, pred string) model.Truth
	// Linked reports whether an edge with pred ("" = any) connects the two
	// entity references.
	Linked(a, b model.Value, pred string) model.Truth
	// TypesOf returns the entity's types as a list value.
	TypesOf(v model.Value, semantic bool) model.Value
	// PredictType returns the statistical layer's best type prediction for
	// the entity as a string value (null when no model or no entity) — the
	// ML extension of the unified language FS.5 asks about.
	PredictType(v model.Value) model.Value
}

// Row is one tuple flowing through the executor: values keyed by
// "binding\x00column", plus the set of bindings present (so that a missing
// attribute of a known binding reads as null — the open-world reading of
// heterogeneous records).
type Row struct {
	vals     map[string]model.Value
	bindings map[string]bool
}

func newRow() Row {
	return Row{vals: map[string]model.Value{}, bindings: map[string]bool{}}
}

func rowKey(binding, name string) string { return binding + "\x00" + name }

// Set stores a value under binding.name.
func (r Row) Set(binding, name string, v model.Value) {
	r.vals[rowKey(binding, name)] = v
	r.bindings[binding] = true
}

// merge combines two rows (for joins); bindings must be disjoint.
func (r Row) merge(o Row) Row {
	out := newRow()
	for k, v := range r.vals {
		out.vals[k] = v
	}
	for k, v := range o.vals {
		out.vals[k] = v
	}
	for b := range r.bindings {
		out.bindings[b] = true
	}
	for b := range o.bindings {
		out.bindings[b] = true
	}
	return out
}

// Lookup resolves a column reference. Qualified references to a known
// binding read null when the attribute is absent; unqualified references
// resolve when exactly one binding carries the name, read null when no
// binding does, and error when ambiguous.
func (r Row) Lookup(binding, name string) (model.Value, error) {
	if binding != "" {
		if v, ok := r.vals[rowKey(binding, name)]; ok {
			return v, nil
		}
		if r.bindings[binding] {
			return model.Null(), nil
		}
		return model.Null(), fmt.Errorf("query: unknown binding %q", binding)
	}
	var found model.Value
	matches := 0
	suffix := "\x00" + name
	for k, v := range r.vals {
		if strings.HasSuffix(k, suffix) {
			found = v
			matches++
		}
	}
	switch matches {
	case 0:
		return model.Null(), nil
	case 1:
		return found, nil
	}
	return model.Null(), fmt.Errorf("query: ambiguous column %q", name)
}

// evalCtx carries evaluation state.
type evalCtx struct {
	env      Env
	semantic bool
}

// truth3 interprets a value as three-valued truth: null is Unknown.
func truth3(v model.Value) (model.Truth, error) {
	if v.IsNull() {
		return model.Unknown, nil
	}
	if b, ok := v.AsBool(); ok {
		return model.TruthOf(b), nil
	}
	return model.Unknown, fmt.Errorf("query: value %s is not boolean", v)
}

// truthValue renders three-valued truth back as a value: Unknown is null.
func truthValue(t model.Truth) model.Value {
	switch t {
	case model.True:
		return model.Bool(true)
	case model.False:
		return model.Bool(false)
	}
	return model.Null()
}

// EvalScalar evaluates a row-free expression: literals and the arithmetic,
// comparison, and logical operators over them. The shard router uses it to
// finalize merged aggregates — it substitutes each aggregate call with a
// Literal holding the merged value, then evaluates the surrounding
// expression exactly as the executor's finalize step would. Column
// references read as null (there is no row); the expression must not
// contain semantic/graph builtins (there is no Env to answer them).
func EvalScalar(e Expr) (model.Value, error) {
	c := &evalCtx{}
	return c.Eval(e, newRow())
}

// EvalOnRow evaluates an expression against one bare row of named output
// columns — the shard router's ORDER BY re-evaluation over merged result
// rows. Columns bind unqualified; a dotted column label ("o.x", how SELECT
// * renders multi-binding rows) additionally binds qualified so qualified
// references resolve. Like EvalScalar, the expression must not contain
// semantic/graph builtins.
func EvalOnRow(e Expr, cols []string, vals []model.Value) (model.Value, error) {
	r := newRow()
	for i, col := range cols {
		if i >= len(vals) {
			break
		}
		r.Set("", col, vals[i])
		if j := strings.Index(col, "."); j > 0 {
			r.Set(col[:j], col[j+1:], vals[i])
		}
	}
	c := &evalCtx{}
	return c.Eval(e, r)
}

// Eval evaluates the expression against a row.
func (c *evalCtx) Eval(e Expr, row Row) (model.Value, error) {
	switch e := e.(type) {
	case *Literal:
		return e.Val, nil
	case *ColRef:
		return row.Lookup(e.Binding, e.Name)
	case *Unary:
		return c.evalUnary(e, row)
	case *Binary:
		return c.evalBinary(e, row)
	case *IsNull:
		v, err := c.Eval(e.X, row)
		if err != nil {
			return model.Value{}, err
		}
		return model.Bool(v.IsNull() != e.Negate), nil
	case *InList:
		return c.evalIn(e, row)
	case *Like:
		v, err := c.Eval(e.X, row)
		if err != nil {
			return model.Value{}, err
		}
		if v.IsNull() {
			return model.Null(), nil
		}
		s, ok := v.AsString()
		if !ok {
			s = v.Text()
		}
		return model.Bool(likeMatch(e.Pattern, s)), nil
	case *Call:
		return c.evalCall(e, row)
	}
	return model.Value{}, fmt.Errorf("query: cannot evaluate %T", e)
}

func (c *evalCtx) evalUnary(e *Unary, row Row) (model.Value, error) {
	v, err := c.Eval(e.X, row)
	if err != nil {
		return model.Value{}, err
	}
	switch e.Op {
	case "-":
		if v.IsNull() {
			return model.Null(), nil
		}
		if i, ok := v.AsInt(); ok {
			return model.Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return model.Float(-f), nil
		}
		return model.Value{}, fmt.Errorf("query: cannot negate %s", v)
	case "NOT":
		t, err := truth3(v)
		if err != nil {
			return model.Value{}, err
		}
		return truthValue(t.Not()), nil
	}
	return model.Value{}, fmt.Errorf("query: unknown unary op %q", e.Op)
}

func (c *evalCtx) evalBinary(e *Binary, row Row) (model.Value, error) {
	switch e.Op {
	case "AND", "OR":
		lv, err := c.Eval(e.L, row)
		if err != nil {
			return model.Value{}, err
		}
		lt, err := truth3(lv)
		if err != nil {
			return model.Value{}, err
		}
		// Short-circuit where three-valued logic allows.
		if e.Op == "AND" && lt == model.False {
			return model.Bool(false), nil
		}
		if e.Op == "OR" && lt == model.True {
			return model.Bool(true), nil
		}
		rv, err := c.Eval(e.R, row)
		if err != nil {
			return model.Value{}, err
		}
		rt, err := truth3(rv)
		if err != nil {
			return model.Value{}, err
		}
		if e.Op == "AND" {
			return truthValue(lt.And(rt)), nil
		}
		return truthValue(lt.Or(rt)), nil
	}

	lv, err := c.Eval(e.L, row)
	if err != nil {
		return model.Value{}, err
	}
	rv, err := c.Eval(e.R, row)
	if err != nil {
		return model.Value{}, err
	}
	switch e.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if lv.IsNull() || rv.IsNull() {
			return model.Null(), nil
		}
		cmp, err := model.Compare(lv, rv)
		if err != nil {
			// Incomparable kinds: heterogeneity reads as Unknown, not as a
			// query failure (the "systematic treatment" rule).
			if e.Op == "=" {
				return model.Bool(false), nil
			}
			if e.Op == "!=" {
				return model.Bool(true), nil
			}
			return model.Null(), nil
		}
		var b bool
		switch e.Op {
		case "=":
			b = cmp == 0
		case "!=":
			b = cmp != 0
		case "<":
			b = cmp < 0
		case "<=":
			b = cmp <= 0
		case ">":
			b = cmp > 0
		case ">=":
			b = cmp >= 0
		}
		return model.Bool(b), nil
	case "+", "-", "*", "/":
		if lv.IsNull() || rv.IsNull() {
			return model.Null(), nil
		}
		lf, lok := lv.AsFloat()
		rf, rok := rv.AsFloat()
		if !lok || !rok {
			if e.Op == "+" {
				// String concatenation.
				if ls, ok := lv.AsString(); ok {
					return model.String(ls + rv.Text()), nil
				}
			}
			return model.Value{}, fmt.Errorf("query: %s needs numeric operands, got %s and %s", e.Op, lv, rv)
		}
		li, lInt := lv.AsInt()
		ri, rInt := rv.AsInt()
		switch e.Op {
		case "+":
			if lInt && rInt {
				return model.Int(li + ri), nil
			}
			return model.Float(lf + rf), nil
		case "-":
			if lInt && rInt {
				return model.Int(li - ri), nil
			}
			return model.Float(lf - rf), nil
		case "*":
			if lInt && rInt {
				return model.Int(li * ri), nil
			}
			return model.Float(lf * rf), nil
		case "/":
			if rf == 0 {
				return model.Null(), nil
			}
			return model.Float(lf / rf), nil
		}
	}
	return model.Value{}, fmt.Errorf("query: unknown operator %q", e.Op)
}

func (c *evalCtx) evalIn(e *InList, row Row) (model.Value, error) {
	v, err := c.Eval(e.X, row)
	if err != nil {
		return model.Value{}, err
	}
	if v.IsNull() {
		return model.Null(), nil
	}
	sawNull := false
	for _, cand := range e.Vals {
		if cand.IsNull() {
			sawNull = true
			continue
		}
		if model.Equal(v, cand) {
			return model.Bool(true), nil
		}
	}
	if sawNull {
		return model.Null(), nil
	}
	return model.Bool(false), nil
}

// aggFuncs are handled by the Aggregate operator, not scalar evaluation.
var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (c *evalCtx) evalCall(e *Call, row Row) (model.Value, error) {
	if aggFuncs[e.Name] {
		return model.Value{}, fmt.Errorf("query: aggregate %s used outside SELECT/HAVING aggregation", e.Name)
	}
	argv := make([]model.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := c.Eval(a, row)
		if err != nil {
			return model.Value{}, err
		}
		argv[i] = v
	}
	switch e.Name {
	case "ISA":
		if len(argv) != 2 {
			return model.Value{}, fmt.Errorf("query: ISA(ref, concept) takes 2 arguments")
		}
		concept, ok := argv[1].AsString()
		if !ok {
			return model.Value{}, fmt.Errorf("query: ISA concept must be a string")
		}
		return truthValue(c.env.IsA(argv[0], concept, c.semantic)), nil
	case "REACHES":
		if len(argv) < 3 || len(argv) > 4 {
			return model.Value{}, fmt.Errorf("query: REACHES(ref, target, k [, pred]) takes 3-4 arguments")
		}
		target, ok := argv[1].AsString()
		if !ok {
			return model.Value{}, fmt.Errorf("query: REACHES target must be a string")
		}
		k, ok := argv[2].AsInt()
		if !ok {
			return model.Value{}, fmt.Errorf("query: REACHES hop count must be an integer")
		}
		pred := ""
		if len(argv) == 4 {
			pred, ok = argv[3].AsString()
			if !ok {
				return model.Value{}, fmt.Errorf("query: REACHES predicate must be a string")
			}
		}
		return truthValue(c.env.Reaches(argv[0], target, int(k), pred)), nil
	case "LINKED":
		if len(argv) < 2 || len(argv) > 3 {
			return model.Value{}, fmt.Errorf("query: LINKED(a, b [, pred]) takes 2-3 arguments")
		}
		pred := ""
		if len(argv) == 3 {
			var ok bool
			pred, ok = argv[2].AsString()
			if !ok {
				return model.Value{}, fmt.Errorf("query: LINKED predicate must be a string")
			}
		}
		return truthValue(c.env.Linked(argv[0], argv[1], pred)), nil
	case "CLOSE":
		if len(argv) != 3 {
			return model.Value{}, fmt.Errorf("query: CLOSE(x, target, tol) takes 3 arguments")
		}
		x, xok := argv[0].AsFloat()
		tgt, tok := argv[1].AsFloat()
		tol, lok := argv[2].AsFloat()
		if argv[0].IsNull() {
			return model.Null(), nil
		}
		if !xok || !tok || !lok {
			return model.Value{}, fmt.Errorf("query: CLOSE arguments must be numeric")
		}
		return model.Float(float64(model.Closeness(x, tgt, tol))), nil
	case "TYPES":
		if len(argv) != 1 {
			return model.Value{}, fmt.Errorf("query: TYPES(ref) takes 1 argument")
		}
		return c.env.TypesOf(argv[0], c.semantic), nil
	case "PREDICT":
		if len(argv) != 1 {
			return model.Value{}, fmt.Errorf("query: PREDICT(ref) takes 1 argument")
		}
		return c.env.PredictType(argv[0]), nil
	case "LOWER", "UPPER":
		if len(argv) != 1 {
			return model.Value{}, fmt.Errorf("query: %s takes 1 argument", e.Name)
		}
		if argv[0].IsNull() {
			return model.Null(), nil
		}
		s := argv[0].Text()
		if e.Name == "LOWER" {
			return model.String(strings.ToLower(s)), nil
		}
		return model.String(strings.ToUpper(s)), nil
	case "LENGTH":
		if len(argv) != 1 {
			return model.Value{}, fmt.Errorf("query: LENGTH takes 1 argument")
		}
		if argv[0].IsNull() {
			return model.Null(), nil
		}
		if l, ok := argv[0].AsList(); ok {
			return model.Int(int64(len(l))), nil
		}
		return model.Int(int64(len(argv[0].Text()))), nil
	case "ABS":
		if len(argv) != 1 {
			return model.Value{}, fmt.Errorf("query: ABS takes 1 argument")
		}
		if argv[0].IsNull() {
			return model.Null(), nil
		}
		if i, ok := argv[0].AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return model.Int(i), nil
		}
		if f, ok := argv[0].AsFloat(); ok {
			if f < 0 {
				f = -f
			}
			return model.Float(f), nil
		}
		return model.Value{}, fmt.Errorf("query: ABS needs a numeric argument")
	case "COALESCE":
		for _, v := range argv {
			if !v.IsNull() {
				return v, nil
			}
		}
		return model.Null(), nil
	}
	return model.Value{}, fmt.Errorf("query: unknown function %s", e.Name)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-insensitively.
func likeMatch(pattern, s string) bool {
	return likeRunes([]rune(strings.ToLower(pattern)), []rune(strings.ToLower(s)))
}

func likeRunes(p, s []rune) bool {
	if len(p) == 0 {
		return len(s) == 0
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRunes(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeRunes(p[1:], s[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeRunes(p[1:], s[1:])
	}
}
