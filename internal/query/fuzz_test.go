package query

import "testing"

// FuzzParse: the parser must never panic, and anything it accepts must
// have a stable canonical form. Runs its seed corpus under plain `go
// test`; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a, b AS c FROM t AS x JOIN u ON x.a = u.b WHERE a > 1 AND b IN (1, 'x', NULL) GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5 WITH SEMANTICS UNDER FUZZY(0.5)",
		"SELECT ISA(x, 'Drug'), REACHES(x, 'y', 3, 'p'), CLOSE(a, 5.0, 0.5) FROM t",
		"SELECT 'it''s' + 1 - -2 FROM \"quoted table\"",
		"SELECT a FROM t -- comment\nWHERE b = 1",
		"SELECT COUNT(*) FROM t UNDER CERTAIN",
		"select lower(NAME) from T where name like '%x_'",
		"SELECT ((((a))))",
		"\x00\xff garbage",
		"SELECT",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := stmt.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form unparseable: %q from %q: %v", canon, src, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q vs %q", canon, again.String())
		}
	})
}
