package query

import (
	"context"
	"sync"

	"scdb/internal/model"
)

// DefaultMorselSize is the number of rows per morsel — the scheduling
// granule of the parallel executor, following the morsel-driven design of
// HyPer (Leis et al., SIGMOD 2014). ~1k rows amortizes dispatch overhead
// while staying cache-resident.
const DefaultMorselSize = 1024

// morsel is a fixed-size chunk of rows flowing through the executor. idx is
// the morsel's sequence number within its stream; stages renumber their
// output so every stream is densely indexed from 0. recs carries raw
// records between a streaming scan source and the binding stage.
type morsel struct {
	idx    int
	rows   []Row
	recs   []model.Record
	hashes []uint64        // per-row hashes, attached by Distinct's hashing stage
	keys   [][]model.Value // per-row sort keys, attached by Sort/TopK's key stage
}

// stream is a pull iterator of morsels. next returns the next morsel in
// index order; ok=false means end of stream (err then carries the first
// error, if any). stop cancels the stream early: producers unwind and
// upstream stages cascade the cancellation. next is not safe for concurrent
// callers — parStage serializes its pulls.
type stream struct {
	next func() (m morsel, ok bool, err error)
	stop func()
}

// emptyStream produces nothing.
func emptyStream() *stream {
	return &stream{
		next: func() (morsel, bool, error) { return morsel{}, false, nil },
		stop: func() {},
	}
}

// sliceStream chunks materialized rows into morsels of the given size.
func sliceStream(rows []Row, size int) *stream {
	i, idx := 0, 0
	return &stream{
		next: func() (morsel, bool, error) {
			if i >= len(rows) {
				return morsel{}, false, nil
			}
			end := i + size
			if end > len(rows) {
				end = len(rows)
			}
			m := morsel{idx: idx, rows: rows[i:end]}
			i, idx = end, idx+1
			return m, true, nil
		},
		stop: func() {},
	}
}

// goSource runs produce in a goroutine and exposes the emitted record
// chunks as a stream. Emitted slices must stay valid after emit returns
// (they cross a channel). produce's emit returns false once the consumer
// stopped or ctx was canceled — either way the producer unwinds its scan;
// produce's error is surfaced at end of stream. The producer goroutine
// registers in wg so the executor can join it before returning.
func goSource(ctx context.Context, wg *sync.WaitGroup, produce func(emit func([]model.Record) bool) error) *stream {
	ch := make(chan []model.Record, 4)
	done := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(done) }) }
	var srcErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := produce(func(recs []model.Record) bool {
			select {
			case ch <- recs:
				return true
			case <-done:
				return false
			case <-ctx.Done():
				return false
			}
		})
		srcErr = err // happens-before the close below
		close(ch)
	}()
	idx := 0
	return &stream{
		next: func() (morsel, bool, error) {
			recs, ok := <-ch
			if !ok {
				return morsel{}, false, srcErr
			}
			m := morsel{idx: idx, recs: recs}
			idx++
			return m, true, nil
		},
		stop: stop,
	}
}

// drainRows materializes a stream, observing ctx between morsels so a
// canceled query stops pulling (and stops the producers) promptly.
func drainRows(ctx context.Context, s *stream) ([]Row, error) {
	var rows []Row
	for {
		if err := ctx.Err(); err != nil {
			s.stop()
			return nil, err
		}
		m, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, m.rows...)
	}
}

// parStage applies fn to every morsel of in on a pool of workers, restoring
// index order on output. Output is byte-identical to the workers==1 case
// for any worker count: morsels are pulled in sequence, processed
// independently, and reassembled through a reorder buffer; the first error
// in morsel order wins, exactly as a serial loop would surface it.
func parStage(in *stream, workers int, wg *sync.WaitGroup, fn func(morsel) (morsel, error)) *stream {
	if workers <= 1 {
		idx := 0
		return &stream{
			next: func() (morsel, bool, error) {
				m, ok, err := in.next()
				if err != nil || !ok {
					return morsel{}, false, err
				}
				out, err := fn(m)
				if err != nil {
					in.stop()
					return morsel{}, false, err
				}
				out.idx = idx
				idx++
				return out, true, nil
			},
			stop: in.stop,
		}
	}
	// Workers may run at most ~4 morsels per worker ahead of the consumer:
	// enough to keep the pool busy, bounded so the reorder buffer stays
	// small and a downstream LIMIT's stop arrives before the stage has
	// raced through the whole input.
	p := &parState{in: in, fn: fn, results: map[int]stageOut{}, ahead: workers * 4}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.work()
		}()
	}
	return &stream{next: p.next, stop: p.stopAll}
}

type stageOut struct {
	m   morsel
	err error
}

// parState is the shared state of one parallel stage: pullMu serializes
// pulls from the upstream stream (assigning dense indices), mu guards the
// reorder buffer and lifecycle flags.
type parState struct {
	in *stream
	fn func(morsel) (morsel, error)

	pullMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	results map[int]stageOut
	ahead   int // max morsels in flight past the consumer (backpressure)
	pulled  int
	inDone  bool
	inErr   error
	erred   bool
	stopped bool
	nextIdx int
}

func (p *parState) work() {
	for {
		p.mu.Lock()
		quit := p.stopped || p.erred || p.inDone
		p.mu.Unlock()
		if quit {
			return
		}
		p.pullMu.Lock()
		p.mu.Lock()
		// Backpressure: holding pullMu (so no sibling overtakes), wait for
		// the consumer to catch up before pulling further input. The
		// consumer only needs mu, which Wait releases.
		for !p.stopped && !p.erred && !p.inDone && p.pulled-p.nextIdx >= p.ahead {
			p.cond.Wait()
		}
		if p.stopped || p.erred || p.inDone {
			p.mu.Unlock()
			p.pullMu.Unlock()
			return
		}
		p.mu.Unlock()
		m, ok, err := p.in.next()
		if !ok || err != nil {
			p.mu.Lock()
			p.inDone = true
			p.inErr = err
			p.mu.Unlock()
			p.pullMu.Unlock()
			p.cond.Broadcast()
			return
		}
		p.mu.Lock()
		idx := p.pulled
		p.pulled++
		p.mu.Unlock()
		p.pullMu.Unlock()

		out, ferr := p.fn(m)
		out.idx = idx
		p.mu.Lock()
		p.results[idx] = stageOut{out, ferr}
		if ferr != nil {
			p.erred = true
		}
		p.mu.Unlock()
		p.cond.Broadcast()
	}
}

func (p *parState) next() (morsel, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if r, ok := p.results[p.nextIdx]; ok {
			delete(p.results, p.nextIdx)
			if r.err != nil {
				p.stopped = true
				p.mu.Unlock()
				p.in.stop()
				p.cond.Broadcast()
				p.mu.Lock()
				return morsel{}, false, r.err
			}
			p.nextIdx++
			p.cond.Broadcast() // wake workers parked on backpressure
			return r.m, true, nil
		}
		if p.inDone && p.nextIdx >= p.pulled {
			return morsel{}, false, p.inErr
		}
		if p.stopped {
			return morsel{}, false, nil
		}
		p.cond.Wait()
	}
}

func (p *parState) stopAll() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.in.stop()
}

// parMap applies fn to every morsel on a worker pool and returns the
// results in morsel order — the fan-in primitive for pipeline breakers
// (sort keys, aggregation partials). Error semantics match a serial loop:
// the error from the lowest-indexed failing morsel wins, and an upstream
// stream error only surfaces if no processed morsel before it failed.
func parMap[T any](in *stream, workers int, fn func(morsel) (T, error)) ([]T, error) {
	if workers <= 1 {
		var out []T
		for {
			m, ok, err := in.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			v, ferr := fn(m)
			if ferr != nil {
				in.stop()
				return nil, ferr
			}
			out = append(out, v)
		}
	}
	var (
		pullMu   sync.Mutex
		mu       sync.Mutex
		results  = map[int]T{}
		errIdx   = -1
		firstErr error
		inErr    error
		pulled   int
		done     bool
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			pullMu.Lock()
			mu.Lock()
			quit := done || errIdx >= 0
			mu.Unlock()
			if quit {
				pullMu.Unlock()
				return
			}
			m, ok, err := in.next()
			if !ok || err != nil {
				mu.Lock()
				done = true
				if err != nil {
					inErr = err
				}
				mu.Unlock()
				pullMu.Unlock()
				return
			}
			mu.Lock()
			idx := pulled
			pulled++
			mu.Unlock()
			pullMu.Unlock()

			v, ferr := fn(m)
			mu.Lock()
			if ferr != nil {
				if errIdx < 0 || idx < errIdx {
					errIdx, firstErr = idx, ferr
				}
			} else {
				results[idx] = v
			}
			mu.Unlock()
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	if errIdx >= 0 {
		in.stop()
		return nil, firstErr
	}
	if inErr != nil {
		return nil, inErr
	}
	out := make([]T, pulled)
	for i := range out {
		out[i] = results[i]
	}
	return out, nil
}
