package query

import (
	"fmt"
	"strings"
)

// Node is a logical/physical plan node. The tree is built by BuildPlan,
// rewritten by the optimizer package, and run by Execute.
type Node interface {
	// Label renders the node's own line for EXPLAIN output.
	Label() string
}

// ScanNode reads a storage table.
type ScanNode struct {
	Table   string
	Binding string
}

func (n *ScanNode) Label() string { return fmt.Sprintf("Scan %s AS %s", n.Table, n.Binding) }

// IndexScanNode reads a storage table through a pushed-down predicate: the
// storage layer picks a secondary index for one sargable conjunct (if one
// exists or access traffic has self-created one) and prunes zone-map
// segments the conjuncts refute. The emitted rows are a superset of the
// matching rows, so the executor re-applies Pred in full — correctness
// never depends on which access path storage chose.
type IndexScanNode struct {
	Table   string
	Binding string
	Pred    Expr           // the full predicate the scan absorbed
	Zone    []ZoneConjunct // sargable conjuncts handed to storage
}

func (n *IndexScanNode) Label() string {
	return fmt.Sprintf("IndexScan %s AS %s ON %s", n.Table, n.Binding, n.Pred.String())
}

// ConceptScanNode reads the entities holding an ontology concept — the
// semantic-layer FROM source.
type ConceptScanNode struct {
	Concept  string
	Binding  string
	Semantic bool
}

func (n *ConceptScanNode) Label() string {
	mode := "asserted"
	if n.Semantic {
		mode = "inferred"
	}
	return fmt.Sprintf("ConceptScan %q AS %s (%s)", n.Concept, n.Binding, mode)
}

// EmptyNode produces no rows; the optimizer plants it when semantics prove
// a query unsatisfiable (OS.3).
type EmptyNode struct {
	Reason string
}

func (n *EmptyNode) Label() string { return "Empty (" + n.Reason + ")" }

// FilterNode keeps rows whose predicate evaluates to True (three-valued:
// Unknown drops the row).
type FilterNode struct {
	Input Node
	Pred  Expr
}

func (n *FilterNode) Label() string { return "Filter " + n.Pred.String() }

// JoinNode joins two inputs on a predicate. Equi-joins on column pairs
// execute as hash joins; anything else falls back to nested loops.
type JoinNode struct {
	L, R Node
	On   Expr
}

func (n *JoinNode) Label() string { return "Join ON " + n.On.String() }

// ProjectNode computes the SELECT list (or passes rows through for *).
type ProjectNode struct {
	Input Node
	Star  bool
	Items []SelectItem
}

func (n *ProjectNode) Label() string {
	if n.Star {
		return "Project *"
	}
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.Label()
	}
	return "Project " + strings.Join(parts, ", ")
}

// AggregateNode groups and aggregates; Having (optional) filters groups
// and may contain aggregate calls.
type AggregateNode struct {
	Input   Node
	GroupBy []Expr
	Items   []SelectItem
	Having  Expr
}

func (n *AggregateNode) Label() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.Label()
	}
	l := "Aggregate " + strings.Join(parts, ", ")
	if len(n.GroupBy) > 0 {
		var gs []string
		for _, g := range n.GroupBy {
			gs = append(gs, g.String())
		}
		l += " GROUP BY " + strings.Join(gs, ", ")
	}
	if n.Having != nil {
		l += " HAVING " + n.Having.String()
	}
	return l
}

// DistinctNode deduplicates rows on every visible column, keeping first
// occurrences.
type DistinctNode struct {
	Input Node
}

func (n *DistinctNode) Label() string { return "Distinct" }

// SortNode orders rows.
type SortNode struct {
	Input Node
	Keys  []OrderKey
}

func (n *SortNode) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// LimitNode truncates the row stream.
type LimitNode struct {
	Input Node
	N     int
}

func (n *LimitNode) Label() string { return fmt.Sprintf("Limit %d", n.N) }

// TopKNode is the fused Sort+Limit operator the optimizer plants: a bounded
// heap keeps the K first rows of the sort order, so the input is never
// fully sorted (and never fully materialized beyond K rows plus a morsel).
type TopKNode struct {
	Input Node
	Keys  []OrderKey
	N     int
}

func (n *TopKNode) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("TopK %d BY %s", n.N, strings.Join(parts, ", "))
}

// Resolver tells the planner how FROM names resolve. Tables win over
// concepts on collision.
type Resolver interface {
	HasTable(name string) bool
	HasConcept(name string) bool
}

// BuildPlan lowers a parsed statement to the canonical plan: left-deep
// joins over the FROM/JOIN sources, then filter, then aggregation or
// projection, then sort and limit. The optimizer rewrites this tree.
func BuildPlan(stmt *SelectStmt, r Resolver) (Node, error) {
	src, err := sourceNode(stmt.From, r, stmt.Semantics)
	if err != nil {
		return nil, err
	}
	var root Node = src
	for _, j := range stmt.Joins {
		right, err := sourceNode(j.Table, r, stmt.Semantics)
		if err != nil {
			return nil, err
		}
		root = &JoinNode{L: root, R: right, On: j.On}
	}
	if stmt.Where != nil {
		root = &FilterNode{Input: root, Pred: stmt.Where}
	}

	hasAgg := false
	for _, it := range stmt.Items {
		if containsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		if stmt.Star {
			return nil, fmt.Errorf("query: SELECT * cannot be combined with aggregation")
		}
		root = &AggregateNode{Input: root, GroupBy: stmt.GroupBy, Items: stmt.Items, Having: stmt.Having}
		if stmt.Distinct {
			root = &DistinctNode{Input: root}
		}
		if len(stmt.OrderBy) > 0 {
			root = &SortNode{Input: root, Keys: stmt.OrderBy}
		}
		if stmt.Limit >= 0 {
			root = &LimitNode{Input: root, N: stmt.Limit}
		}
		return root, nil
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("query: HAVING requires GROUP BY or aggregates")
	}

	if stmt.Distinct {
		// DISTINCT deduplicates the projected rows, so projection runs
		// first; ORDER BY may then only reference selected columns (the
		// standard SQL restriction).
		root = &ProjectNode{Input: root, Star: stmt.Star, Items: stmt.Items}
		root = &DistinctNode{Input: root}
		if len(stmt.OrderBy) > 0 {
			root = &SortNode{Input: root, Keys: stmt.OrderBy}
		}
		if stmt.Limit >= 0 {
			root = &LimitNode{Input: root, N: stmt.Limit}
		}
		return root, nil
	}

	if len(stmt.OrderBy) > 0 {
		root = &SortNode{Input: root, Keys: stmt.OrderBy}
	}
	if stmt.Limit >= 0 {
		root = &LimitNode{Input: root, N: stmt.Limit}
	}
	root = &ProjectNode{Input: root, Star: stmt.Star, Items: stmt.Items}
	return root, nil
}

func sourceNode(t TableRef, r Resolver, semantic bool) (Node, error) {
	switch {
	case r.HasTable(t.Name):
		return &ScanNode{Table: t.Name, Binding: t.Binding()}, nil
	case r.HasConcept(t.Name):
		return &ConceptScanNode{Concept: t.Name, Binding: t.Binding(), Semantic: semantic}, nil
	}
	return nil, fmt.Errorf("query: unknown source %q (neither table nor concept)", t.Name)
}

// containsAggregate reports whether the expression mentions an aggregate
// function.
func containsAggregate(e Expr) bool {
	switch e := e.(type) {
	case *Call:
		if aggFuncs[e.Name] {
			return true
		}
		for _, a := range e.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *Unary:
		return containsAggregate(e.X)
	case *Binary:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *IsNull:
		return containsAggregate(e.X)
	case *InList:
		return containsAggregate(e.X)
	case *Like:
		return containsAggregate(e.X)
	}
	return false
}

// Explain renders the plan tree, one node per line, children indented.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label())
	b.WriteByte('\n')
	for _, child := range Children(n) {
		explain(b, child, depth+1)
	}
}

// Children returns the node's inputs (for traversal by Explain and the
// optimizer).
func Children(n Node) []Node {
	switch n := n.(type) {
	case *FilterNode:
		return []Node{n.Input}
	case *JoinNode:
		return []Node{n.L, n.R}
	case *ProjectNode:
		return []Node{n.Input}
	case *AggregateNode:
		return []Node{n.Input}
	case *DistinctNode:
		return []Node{n.Input}
	case *SortNode:
		return []Node{n.Input}
	case *LimitNode:
		return []Node{n.Input}
	case *TopKNode:
		return []Node{n.Input}
	}
	return nil
}
