package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp     // = != < <= > >= + - * / ( ) , .
	tokQuoted // "double quoted identifier"
)

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "GROUP": true,
	"BY": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"IS": true, "NULL": true, "IN": true, "LIKE": true, "WITH": true,
	"DISTINCT": true, "HAVING": true, "EXPLAIN": true, "ANALYZE": true, "TRACE": true,
	"SEMANTICS": true, "UNDER": true, "CERTAIN": true, "FUZZY": true,
	"TRUE": true, "FALSE": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; strings unquoted
	pos  int
}

// lex tokenizes the input. It returns a descriptive error on malformed
// input (unterminated string, unexpected rune).
func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '-' && i+1 < len(runes) && runes[i+1] == '-':
			// SQL line comment: skip to end of line.
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			word := string(runes[start:i])
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(r) || (r == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			start := i
			seenDot := false
			for i < len(runes) && (unicode.IsDigit(runes[i]) || (runes[i] == '.' && !seenDot)) {
				if runes[i] == '.' {
					// A dot not followed by a digit is a qualifier, not a
					// decimal point.
					if i+1 >= len(runes) || !unicode.IsDigit(runes[i+1]) {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, string(runes[start:i]), start})
		case r == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < len(runes) {
				if runes[i] == '\'' {
					if i+1 < len(runes) && runes[i+1] == '\'' { // escaped ''
						sb.WriteRune('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteRune(runes[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("query: unterminated string literal at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
		case r == '"':
			i++
			start := i
			for i < len(runes) && runes[i] != '"' {
				i++
			}
			if i >= len(runes) {
				return nil, fmt.Errorf("query: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, token{tokQuoted, string(runes[start:i]), start})
			i++
		case strings.ContainsRune("=+-*/(),.", r):
			toks = append(toks, token{tokOp, string(r), i})
			i++
		case r == '!' || r == '<' || r == '>':
			start := i
			i++
			if i < len(runes) && runes[i] == '=' {
				i++
			}
			op := string(runes[start:i])
			if op == "!" {
				return nil, fmt.Errorf("query: unexpected '!' at %d (use !=)", start)
			}
			if op == "<" && i < len(runes) && runes[i] == '>' {
				op = "!="
				i++
			}
			toks = append(toks, token{tokOp, op, start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", r, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(runes)})
	return toks, nil
}
