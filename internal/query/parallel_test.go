package query

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"scdb/internal/model"
)

// renderResult flattens a result to a comparable string.
func renderResult(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	b.WriteString("\n")
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString("|")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// differentialCorpus exercises every operator the executor implements.
var differentialCorpus = []string{
	"SELECT * FROM drugs",
	"SELECT name FROM drugs",
	"SELECT name, dose FROM drugs WHERE dose > 5 ORDER BY dose DESC LIMIT 3",
	"SELECT name FROM drugs WHERE dose > 6 AND dose < 100",
	"SELECT name FROM drugs WHERE dose IS NULL",
	"SELECT name FROM drugs WHERE dose IS NOT NULL ORDER BY dose",
	"SELECT name, dose * 2 AS double_dose FROM drugs WHERE name = 'Warfarin'",
	"SELECT d.name, t.gene FROM drugs AS d JOIN targets AS t ON d.name = t.drug ORDER BY d.name",
	"SELECT d.name, t.gene FROM drugs AS d JOIN targets AS t ON d.name = t.drug AND d.dose > 6 AND d.dose < 100",
	"SELECT * FROM drugs AS d JOIN targets AS t ON d.name = t.drug",
	"SELECT COUNT(*) AS n, SUM(dose) AS total, AVG(dose) AS mean, MIN(dose) AS lo, MAX(dose) AS hi FROM drugs",
	"SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene ORDER BY n DESC, gene",
	"SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene HAVING COUNT(*) > 1",
	"SELECT COUNT(*) AS n FROM drugs WHERE dose > 10000",
	"SELECT DISTINCT gene FROM targets ORDER BY gene",
	"SELECT DISTINCT gene FROM targets",
	"SELECT name FROM Drug ORDER BY name",
	"SELECT name FROM drugs WHERE ISA(id, 'Drug')",
	"SELECT name FROM drugs WHERE ISA(id, 'Chemical') WITH SEMANTICS",
	"SELECT name FROM drugs WHERE REACHES(id, 'Osteosarcoma', 3)",
	"SELECT name FROM drugs WHERE CLOSE(dose, 5.0, 0.5) >= 0.5",
	"SELECT name FROM drugs WHERE name LIKE '%war%'",
	"SELECT name FROM drugs WHERE name IN ('Warfarin', 'Ibuprofen')",
	"SELECT name FROM drugs ORDER BY name LIMIT 0",
	"SELECT name FROM drugs LIMIT 2",
	"SELECT SUM(dose) + COUNT(*) AS x FROM drugs",
	"SELECT name FROM drugs WHERE dose > 1 OR name = 'Mystery'",
}

// runOpts plans src against the fixture and executes it with opts.
func runOpts(t *testing.T, src string, opts ExecOptions) (*Result, error) {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	e := env()
	plan, err := BuildPlan(stmt, e)
	if err != nil {
		return nil, err
	}
	opts.Semantic = stmt.Semantics
	res, _, err := ExecuteOpts(plan, e, opts)
	return res, err
}

// TestParallelDifferential: for every corpus statement, every worker count
// must produce byte-identical output to serial execution — at the default
// morsel size and at a tiny one that forces multi-morsel merges.
func TestParallelDifferential(t *testing.T) {
	for _, size := range []int{0, 1, 2, 3} {
		for _, src := range differentialCorpus {
			base, err := runOpts(t, src, ExecOptions{Parallelism: 1, MorselSize: size})
			if err != nil {
				t.Fatalf("serial %q (size %d): %v", src, size, err)
			}
			want := renderResult(base)
			for _, workers := range []int{2, 3, 8} {
				got, err := runOpts(t, src, ExecOptions{Parallelism: workers, MorselSize: size})
				if err != nil {
					t.Fatalf("parallel(%d) %q (size %d): %v", workers, src, size, err)
				}
				if g := renderResult(got); g != want {
					t.Errorf("%q: parallelism %d size %d diverged:\nserial:\n%s\nparallel:\n%s",
						src, workers, size, want, g)
				}
			}
		}
	}
}

// TestParallelErrorParity: runtime errors surface identically at every
// worker count.
func TestParallelErrorParity(t *testing.T) {
	bad := []string{
		"SELECT name FROM drugs WHERE name - 1 > 2",
		"SELECT name FROM drugs WHERE dose",
		"SELECT ISA(id) FROM drugs",
		"SELECT UNKNOWN_FUNC(name) FROM drugs",
		"SELECT SUM(name) FROM drugs",
		"SELECT SUM(*) FROM drugs",
		"SELECT COUNT(name, dose) FROM drugs",
	}
	for _, src := range bad {
		_, serr := runOpts(t, src, ExecOptions{Parallelism: 1, MorselSize: 2})
		if serr == nil {
			t.Fatalf("%q must fail", src)
		}
		for _, workers := range []int{2, 8} {
			_, perr := runOpts(t, src, ExecOptions{Parallelism: workers, MorselSize: 2})
			if perr == nil {
				t.Fatalf("%q must fail at parallelism %d", src, workers)
			}
			if serr.Error() != perr.Error() {
				t.Errorf("%q: error diverged: serial %q, parallel(%d) %q",
					src, serr, workers, perr)
			}
		}
	}
}

// TestDeduperHashCollision: rows that collide on hash but differ in content
// must both survive DISTINCT (the bug the bucket+compare design fixes).
func TestDeduperHashCollision(t *testing.T) {
	r1 := newRow()
	r1.Set("", "name", model.String("a"))
	r2 := newRow()
	r2.Set("", "name", model.String("b"))
	d := &deduper{buckets: map[uint64][]Row{}}
	const h = 42 // forced collision: same bucket for both rows
	if !d.keep(r1, h) {
		t.Fatal("first row must be kept")
	}
	if !d.keep(r2, h) {
		t.Fatal("distinct row sharing a hash bucket must be kept")
	}
	if d.keep(r1, h) {
		t.Fatal("true duplicate must be dropped")
	}
	// Null and absent values are distinct rows.
	r3 := newRow()
	r3.Set("", "name", model.Null())
	if !d.keep(r3, h) {
		t.Fatal("null-valued row is distinct from string-valued rows")
	}
	if d.keep(r3, h) {
		t.Fatal("duplicate null-valued row must be dropped")
	}
}

// synthetic builds an environment with one big table for ordering and
// early-stop tests: n rows with key cycling 0..9 and a unique seq.
func synthetic(n int) (*fakeEnv, []model.Record) {
	recs := make([]model.Record, n)
	for i := range recs {
		recs[i] = model.Record{
			"key": model.Int(int64(i % 10)),
			"seq": model.Int(int64(i)),
		}
	}
	e := env()
	e.tables["big"] = recs
	return e, recs
}

// TestTopKMatchesSortLimit: the fused TopK operator must agree with
// Sort-then-Limit on data full of duplicate keys (stable tiebreak), at
// every parallelism.
func TestTopKMatchesSortLimit(t *testing.T) {
	e, _ := synthetic(137)
	keys := []OrderKey{{Expr: &ColRef{Name: "key"}, Desc: true}}
	scan := func() Node { return &ScanNode{Table: "big", Binding: "big"} }
	for _, k := range []int{0, 1, 3, 10, 137, 500} {
		ref := &LimitNode{Input: &SortNode{Input: scan(), Keys: keys}, N: k}
		want, _, err := ExecuteOpts(ref, e, ExecOptions{Parallelism: 1, MorselSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			topk := &TopKNode{Input: scan(), Keys: keys, N: k}
			got, _, err := ExecuteOpts(topk, e, ExecOptions{Parallelism: workers, MorselSize: 16})
			if err != nil {
				t.Fatal(err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("k=%d workers=%d: TopK != Sort+Limit\nwant:\n%s\ngot:\n%s",
					k, workers, renderResult(want), renderResult(got))
			}
		}
	}
}

// countingMorselEnv wraps fakeEnv with a streaming scan that counts emitted
// chunks, to observe LIMIT cancelling the producer early. The counter is
// atomic: a join's two scan producers run concurrently.
type countingMorselEnv struct {
	*fakeEnv
	emitted atomic.Int64
}

func (c *countingMorselEnv) emitAll(recs []model.Record, size int, emit func([]model.Record) bool) {
	for lo := 0; lo < len(recs); lo += size {
		hi := lo + size
		if hi > len(recs) {
			hi = len(recs)
		}
		c.emitted.Add(1)
		if !emit(recs[lo:hi]) {
			return
		}
	}
}

func (c *countingMorselEnv) ScanTableMorsels(name string, size int, emit func([]model.Record) bool) bool {
	recs, ok := c.tables[name]
	if !ok {
		return false
	}
	c.emitAll(recs, size, emit)
	return true
}

func (c *countingMorselEnv) ScanConceptMorsels(concept string, semantic bool, size int, emit func([]model.Record) bool) bool {
	recs, ok := c.concepts[concept]
	if !ok {
		return false
	}
	c.emitAll(recs, size, emit)
	return true
}

// TestLimitStopsScanEarly: Scan → Limit over a streaming source must cancel
// the scan long before it covers the table.
func TestLimitStopsScanEarly(t *testing.T) {
	base, _ := synthetic(10000)
	env := &countingMorselEnv{fakeEnv: base}
	plan := &LimitNode{Input: &ScanNode{Table: "big", Binding: "big"}, N: 5}
	res, _, err := ExecuteOpts(plan, env, ExecOptions{Parallelism: 4, MorselSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	// 10000 rows / 10 per morsel = 1000 chunks; the limit needs 1. Allow
	// generous slack for pipeline buffering (channel depth + in-flight
	// workers), which is bounded by a constant, not the table size.
	if n := env.emitted.Load(); n > 50 {
		t.Errorf("scan emitted %d chunks after LIMIT 5; early stop is broken", n)
	}
}

// TestMorselEnvMatchesMaterialized: the streaming scan path and the
// materializing fallback must agree on the corpus.
func TestMorselEnvMatchesMaterialized(t *testing.T) {
	for _, src := range differentialCorpus {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		plain := env()
		plan, err := BuildPlan(stmt, plain)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ExecuteOpts(plan, plain, ExecOptions{Semantic: stmt.Semantics, Parallelism: 1, MorselSize: 2})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		streaming := &countingMorselEnv{fakeEnv: env()}
		got, _, err := ExecuteOpts(plan, streaming, ExecOptions{Semantic: stmt.Semantics, Parallelism: 4, MorselSize: 2})
		if err != nil {
			t.Fatalf("%q (streaming): %v", src, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Errorf("%q: streaming scan diverged\nwant:\n%s\ngot:\n%s",
				src, renderResult(want), renderResult(got))
		}
	}
}

// TestOperatorStatsTree: EXPLAIN ANALYZE's stats mirror the plan shape and
// count rows faithfully.
func TestOperatorStatsTree(t *testing.T) {
	stmt, err := Parse("SELECT name FROM drugs WHERE dose > 5")
	if err != nil {
		t.Fatal(err)
	}
	e := env()
	plan, err := BuildPlan(stmt, e)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteOpts(plan, e, ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no stats tree")
	}
	rendered := st.Render()
	for _, want := range []string{"Project name", "Filter", "Scan drugs", "in=", "out=", "morsels=", "time="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("stats missing %q:\n%s", want, rendered)
		}
	}
	// The root's output cardinality equals the result.
	if st.RowsOut != int64(len(res.Rows)) {
		t.Errorf("root RowsOut = %d, want %d", st.RowsOut, len(res.Rows))
	}
	// Scan (deepest child) reads all 4 fixture rows.
	leaf := st
	for len(leaf.Children) > 0 {
		leaf = leaf.Children[0]
	}
	if leaf.RowsIn != 4 {
		t.Errorf("scan RowsIn = %d, want 4", leaf.RowsIn)
	}
}

// TestExplainParsing: the EXPLAIN [ANALYZE] prefix parses, round-trips, and
// stays out of the way of identifiers named like the keywords.
func TestExplainParsing(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT name FROM drugs")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain || stmt.Analyze {
		t.Errorf("Explain=%v Analyze=%v", stmt.Explain, stmt.Analyze)
	}
	stmt, err = Parse("EXPLAIN ANALYZE SELECT name FROM drugs LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain || !stmt.Analyze {
		t.Errorf("Explain=%v Analyze=%v", stmt.Explain, stmt.Analyze)
	}
	for _, src := range []string{
		"EXPLAIN SELECT name FROM drugs",
		"EXPLAIN ANALYZE SELECT name FROM drugs ORDER BY name LIMIT 2",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if stmt.String() != again.String() {
			t.Errorf("canonical form unstable: %q vs %q", stmt.String(), again.String())
		}
	}
}

// TestParallelDefaultWorkers: Parallelism 0 resolves to GOMAXPROCS and
// still matches serial output.
func TestParallelDefaultWorkers(t *testing.T) {
	for _, src := range []string{
		"SELECT name FROM drugs ORDER BY name",
		"SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene",
	} {
		want, err := runOpts(t, src, ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := runOpts(t, src, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(got) != renderResult(want) {
			t.Errorf("%q: default parallelism diverged", src)
		}
	}
}

// TestParMapOrdering: parMap returns results in morsel order regardless of
// completion order.
func TestParMapOrdering(t *testing.T) {
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = newRow()
	}
	got, err := parMap(sliceStream(rows, 1), 8, func(m morsel) (int, error) {
		return m.idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
}

// TestParStageOrdering: parStage restores morsel order under contention.
func TestParStageOrdering(t *testing.T) {
	rows := make([]Row, 500)
	for i := range rows {
		r := newRow()
		r.Set("", "i", model.Int(int64(i)))
		rows[i] = r
	}
	var wg sync.WaitGroup
	s := parStage(sliceStream(rows, 7), 8, &wg, func(m morsel) (morsel, error) {
		return m, nil
	})
	out, err := drainRows(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 500 {
		t.Fatalf("len = %d", len(out))
	}
	for i, r := range out {
		v, _ := r.vals[rowKey("", "i")].AsInt()
		if v != int64(i) {
			t.Fatalf("row %d carries %d; order not restored", i, v)
		}
	}
	wg.Wait()
}
