package query

import (
	"strings"
	"testing"

	"scdb/internal/model"
)

// fakeEnv is a fixture environment: two tables and one concept extent over
// a toy life-science graph.
type fakeEnv struct {
	tables   map[string][]model.Record
	concepts map[string][]model.Record
	// reach[from][target] under any predicate
	reach map[model.EntityID]map[string]bool
	types map[model.EntityID][]string
	// inferredTypes extend types when semantic=true.
	inferredTypes map[model.EntityID][]string
}

func (f *fakeEnv) ScanTable(name string) ([]model.Record, bool) {
	r, ok := f.tables[name]
	return r, ok
}

func (f *fakeEnv) ScanConcept(c string, semantic bool) ([]model.Record, bool) {
	r, ok := f.concepts[c]
	return r, ok
}

func (f *fakeEnv) HasTable(name string) bool   { _, ok := f.tables[name]; return ok }
func (f *fakeEnv) HasConcept(name string) bool { _, ok := f.concepts[name]; return ok }

func (f *fakeEnv) IsA(v model.Value, concept string, semantic bool) model.Truth {
	id, ok := v.AsRef()
	if !ok {
		return model.Unknown
	}
	for _, t := range f.types[id] {
		if t == concept {
			return model.True
		}
	}
	if semantic {
		for _, t := range f.inferredTypes[id] {
			if t == concept {
				return model.True
			}
		}
	}
	return model.False
}

func (f *fakeEnv) Reaches(from model.Value, target string, k int, pred string) model.Truth {
	id, ok := from.AsRef()
	if !ok {
		return model.Unknown
	}
	return model.TruthOf(f.reach[id][target])
}

func (f *fakeEnv) Linked(a, b model.Value, pred string) model.Truth {
	ia, ok1 := a.AsRef()
	ib, ok2 := b.AsRef()
	if !ok1 || !ok2 {
		return model.Unknown
	}
	return model.TruthOf(ia+1 == ib) // toy adjacency
}

func (f *fakeEnv) PredictType(v model.Value) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	if ts := f.types[id]; len(ts) > 0 {
		return model.String(ts[0])
	}
	return model.Null()
}

func (f *fakeEnv) TypesOf(v model.Value, semantic bool) model.Value {
	id, ok := v.AsRef()
	if !ok {
		return model.Null()
	}
	var vals []model.Value
	for _, t := range f.types[id] {
		vals = append(vals, model.String(t))
	}
	if semantic {
		for _, t := range f.inferredTypes[id] {
			vals = append(vals, model.String(t))
		}
	}
	return model.List(vals...)
}

func env() *fakeEnv {
	return &fakeEnv{
		tables: map[string][]model.Record{
			"drugs": {
				{"name": model.String("Warfarin"), "dose": model.Float(5.1), "id": model.Ref(1)},
				{"name": model.String("Ibuprofen"), "dose": model.Float(200), "id": model.Ref(2)},
				{"name": model.String("Methotrexate"), "dose": model.Float(7.5), "id": model.Ref(3)},
				{"name": model.String("Mystery"), "id": model.Ref(4)}, // dose missing → null
			},
			"targets": {
				{"drug": model.String("Warfarin"), "gene": model.String("VKORC1")},
				{"drug": model.String("Ibuprofen"), "gene": model.String("PTGS2")},
				{"drug": model.String("Methotrexate"), "gene": model.String("DHFR")},
				{"drug": model.String("Acetaminophen"), "gene": model.String("PTGS2")},
			},
		},
		concepts: map[string][]model.Record{
			"Drug": {
				{"_id": model.Ref(1), "name": model.String("Warfarin")},
				{"_id": model.Ref(2), "name": model.String("Ibuprofen")},
			},
		},
		reach: map[model.EntityID]map[string]bool{
			3: {"Osteosarcoma": true},
		},
		types:         map[model.EntityID][]string{1: {"Drug"}, 2: {"Drug"}, 3: {"Drug"}},
		inferredTypes: map[model.EntityID][]string{1: {"Chemical"}, 2: {"Chemical"}, 3: {"Chemical"}},
	}
}

// mustRun parses, plans, and executes a query against the fixture.
func mustRun(t *testing.T, src string) *Result {
	t.Helper()
	res, err := runQuery(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func runQuery(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	e := env()
	plan, err := BuildPlan(stmt, e)
	if err != nil {
		return nil, err
	}
	return Execute(plan, e, stmt.Semantics)
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM drugs",
		"SELECT name, dose FROM drugs WHERE dose > 5 ORDER BY dose DESC LIMIT 3",
		"SELECT d.name FROM drugs AS d JOIN targets AS t ON d.name = t.drug",
		"SELECT COUNT(*) FROM drugs GROUP BY name",
		"SELECT name FROM drugs WHERE ISA(id, 'Drug') WITH SEMANTICS",
		"SELECT name FROM drugs WHERE dose IN (5.1, 7.5)",
		"SELECT name FROM drugs WHERE name LIKE 'War%'",
		"SELECT name FROM drugs WHERE dose IS NOT NULL",
		"SELECT name FROM drugs UNDER CERTAIN",
		"SELECT name FROM drugs UNDER FUZZY(0.8) WITH SEMANTICS",
	}
	for _, src := range srcs {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Re-parse the canonical form: must parse to the same string.
		again, err := Parse(stmt.String())
		if err != nil {
			t.Errorf("re-parse of %q (%q): %v", src, stmt.String(), err)
			continue
		}
		if stmt.String() != again.String() {
			t.Errorf("canonical form unstable: %q vs %q", stmt.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM drugs WHERE",
		"SELECT * FROM drugs LIMIT -1",
		"SELECT * FROM drugs trailing garbage (",
		"SELECT name FROM drugs WHERE name LIKE 5",
		"SELECT * FROM drugs UNDER MAYBE",
		"SELECT * FROM drugs UNDER FUZZY(2)",
		"SELECT 'unterminated FROM drugs",
		"SELECT * FROM drugs WHERE a ! b",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestSimpleScanAndFilter(t *testing.T) {
	res := mustRun(t, "SELECT name FROM drugs WHERE dose > 6 AND dose < 100")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Methotrexate")) {
		t.Errorf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestNullComparisonsDropRows(t *testing.T) {
	// Mystery has null dose: neither > nor <= selects it.
	over := mustRun(t, "SELECT name FROM drugs WHERE dose > 0")
	under := mustRun(t, "SELECT name FROM drugs WHERE dose <= 0")
	if len(over.Rows)+len(under.Rows) != 3 {
		t.Errorf("null row leaked into a partition: %d + %d", len(over.Rows), len(under.Rows))
	}
	isNull := mustRun(t, "SELECT name FROM drugs WHERE dose IS NULL")
	if len(isNull.Rows) != 1 || !model.Equal(isNull.Rows[0][0], model.String("Mystery")) {
		t.Errorf("IS NULL = %v", isNull.Rows)
	}
	notNull := mustRun(t, "SELECT name FROM drugs WHERE dose IS NOT NULL")
	if len(notNull.Rows) != 3 {
		t.Errorf("IS NOT NULL = %v", notNull.Rows)
	}
}

func TestProjectionArithmeticAndAlias(t *testing.T) {
	res := mustRun(t, "SELECT name, dose * 2 AS double_dose FROM drugs WHERE name = 'Warfarin'")
	if res.Columns[1] != "double_dose" {
		t.Errorf("columns = %v", res.Columns)
	}
	if f, _ := res.Rows[0][1].AsFloat(); f != 10.2 {
		t.Errorf("double dose = %v", res.Rows[0][1])
	}
}

func TestStarProjection(t *testing.T) {
	res := mustRun(t, "SELECT * FROM drugs WHERE name = 'Warfarin'")
	if len(res.Columns) != 3 {
		t.Errorf("star columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	res := mustRun(t, "SELECT name, dose FROM drugs WHERE dose IS NOT NULL ORDER BY dose DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !model.Equal(res.Rows[0][0], model.String("Ibuprofen")) {
		t.Errorf("first = %v", res.Rows[0])
	}
	if !model.Equal(res.Rows[1][0], model.String("Methotrexate")) {
		t.Errorf("second = %v", res.Rows[1])
	}
	asc := mustRun(t, "SELECT name FROM drugs WHERE dose IS NOT NULL ORDER BY dose")
	if !model.Equal(asc.Rows[0][0], model.String("Warfarin")) {
		t.Errorf("asc first = %v", asc.Rows[0])
	}
}

func TestHashJoin(t *testing.T) {
	res := mustRun(t, "SELECT d.name, t.gene FROM drugs AS d JOIN targets AS t ON d.name = t.drug ORDER BY d.name")
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if !model.Equal(res.Rows[0][1], model.String("PTGS2")) { // Ibuprofen first
		t.Errorf("rows = %v", res.Rows)
	}
	// Acetaminophen has no drugs row; Mystery has no targets row.
	for _, r := range res.Rows {
		if model.Equal(r[0], model.String("Mystery")) {
			t.Error("unmatched row leaked through join")
		}
	}
}

func TestNestedLoopJoin(t *testing.T) {
	res := mustRun(t, "SELECT d.name, t.gene FROM drugs AS d JOIN targets AS t ON d.name = t.drug AND d.dose > 6 AND d.dose < 100")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][1], model.String("DHFR")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	res := mustRun(t, "SELECT COUNT(*) AS n, SUM(dose) AS total, AVG(dose) AS mean, MIN(dose) AS lo, MAX(dose) AS hi FROM drugs")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if n, _ := row[0].AsInt(); n != 4 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if f, _ := row[1].AsFloat(); f < 212.59 || f > 212.61 {
		t.Errorf("SUM = %v", row[1])
	}
	if f, _ := row[2].AsFloat(); f < 70.8 || f > 70.9 { // over 3 non-null
		t.Errorf("AVG = %v", row[2])
	}
	if f, _ := row[3].AsFloat(); f != 5.1 {
		t.Errorf("MIN = %v", row[3])
	}
	if f, _ := row[4].AsFloat(); f != 200 {
		t.Errorf("MAX = %v", row[4])
	}
}

func TestGroupBy(t *testing.T) {
	res := mustRun(t, "SELECT gene, COUNT(*) AS n FROM targets GROUP BY gene ORDER BY n DESC, gene")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if !model.Equal(res.Rows[0][0], model.String("PTGS2")) {
		t.Errorf("top group = %v", res.Rows[0])
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("PTGS2 count = %v", res.Rows[0][1])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	res := mustRun(t, "SELECT COUNT(*) AS n FROM drugs WHERE dose > 10000")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows[0][0])
	}
}

func TestConceptScan(t *testing.T) {
	res := mustRun(t, "SELECT name FROM Drug ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("concept rows = %v", res.Rows)
	}
	if !model.Equal(res.Rows[0][0], model.String("Ibuprofen")) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSemanticPredicates(t *testing.T) {
	// Asserted type works without WITH SEMANTICS.
	res := mustRun(t, "SELECT name FROM drugs WHERE ISA(id, 'Drug')")
	if len(res.Rows) != 3 {
		t.Errorf("asserted ISA rows = %v", res.Rows)
	}
	// Inferred type requires WITH SEMANTICS.
	res = mustRun(t, "SELECT name FROM drugs WHERE ISA(id, 'Chemical')")
	if len(res.Rows) != 0 {
		t.Errorf("inferred type without semantics = %v", res.Rows)
	}
	res = mustRun(t, "SELECT name FROM drugs WHERE ISA(id, 'Chemical') WITH SEMANTICS")
	if len(res.Rows) != 3 {
		t.Errorf("inferred ISA rows = %v", res.Rows)
	}
}

func TestReachesPredicate(t *testing.T) {
	res := mustRun(t, "SELECT name FROM drugs WHERE REACHES(id, 'Osteosarcoma', 3)")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Methotrexate")) {
		t.Errorf("REACHES rows = %v", res.Rows)
	}
}

func TestClosePredicate(t *testing.T) {
	// The Warfarin fuzzy-closeness query from the paper.
	res := mustRun(t, "SELECT name FROM drugs WHERE CLOSE(dose, 5.0, 0.5) >= 0.5")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("Warfarin")) {
		t.Errorf("CLOSE rows = %v", res.Rows)
	}
	// Null dose propagates as null, dropping the row without error.
	res = mustRun(t, "SELECT name FROM drugs WHERE CLOSE(dose, 5.0, 0.5) > 0")
	for _, r := range res.Rows {
		if model.Equal(r[0], model.String("Mystery")) {
			t.Error("null dose must not satisfy CLOSE")
		}
	}
}

func TestLikeInScalarFuncs(t *testing.T) {
	res := mustRun(t, "SELECT name FROM drugs WHERE name LIKE '%war%'")
	if len(res.Rows) != 1 {
		t.Errorf("LIKE rows = %v", res.Rows)
	}
	res = mustRun(t, "SELECT LOWER(name) FROM drugs WHERE UPPER(name) = 'WARFARIN'")
	if len(res.Rows) != 1 || !model.Equal(res.Rows[0][0], model.String("warfarin")) {
		t.Errorf("LOWER/UPPER = %v", res.Rows)
	}
	res = mustRun(t, "SELECT COALESCE(dose, 0) AS d FROM drugs WHERE name = 'Mystery'")
	if f, _ := res.Rows[0][0].AsFloat(); f != 0 {
		t.Errorf("COALESCE = %v", res.Rows[0][0])
	}
	res = mustRun(t, "SELECT ABS(0 - dose) AS d FROM drugs WHERE name = 'Warfarin'")
	if f, _ := res.Rows[0][0].AsFloat(); f != 5.1 {
		t.Errorf("ABS = %v", res.Rows[0][0])
	}
}

func TestInList(t *testing.T) {
	res := mustRun(t, "SELECT name FROM drugs WHERE name IN ('Warfarin', 'Ibuprofen')")
	if len(res.Rows) != 2 {
		t.Errorf("IN rows = %v", res.Rows)
	}
	res = mustRun(t, "SELECT name FROM drugs WHERE dose IN (5.1)")
	if len(res.Rows) != 1 {
		t.Errorf("numeric IN rows = %v", res.Rows)
	}
}

func TestRuntimeErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM nonexistent",
		"SELECT name FROM drugs WHERE name - 1 > 2",           // non-numeric arithmetic
		"SELECT name FROM drugs WHERE dose",                   // non-boolean filter
		"SELECT ISA(id) FROM drugs",                           // wrong arity
		"SELECT UNKNOWN_FUNC(name) FROM drugs",                // unknown function
		"SELECT COUNT(name) FROM drugs WHERE COUNT(name) > 1", // aggregate in WHERE
	}
	for _, src := range bad {
		if _, err := runQuery(src); err == nil {
			t.Errorf("%q must fail at runtime", src)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	res := mustRun(t, "SELECT dose / 0 AS x FROM drugs WHERE name = 'Warfarin'")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("x = %v, want null", res.Rows[0][0])
	}
}

func TestExplainShape(t *testing.T) {
	stmt, err := Parse("SELECT name FROM drugs WHERE dose > 5 ORDER BY name LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(stmt, env())
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(plan)
	for _, want := range []string{"Project name", "Limit 1", "Sort name", "Filter", "Scan drugs"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
	// Indentation: Scan is the deepest.
	lines := strings.Split(strings.TrimSpace(ex), "\n")
	if !strings.HasPrefix(lines[len(lines)-1], strings.Repeat("  ", len(lines)-1)) {
		t.Errorf("bad indentation:\n%s", ex)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	// Both drugs and targets have no shared column except via alias; gene
	// exists once, name once → unqualified refs fine. Make an ambiguous
	// one: join drugs with drugs.
	_, err := runQuery("SELECT name FROM drugs AS a JOIN drugs AS b ON a.name = b.name WHERE name = 'x'")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column must error, got %v", err)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"", "", true},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"ABC", "abc", true}, // case-insensitive
		{"%b%", "abc", true},
		{"x%", "abc", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}
