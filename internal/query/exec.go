package query

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"scdb/internal/model"
)

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]model.Value
}

// MorselEnv is an optional extension of Env. Environments that can stream a
// table or concept in chunks implement it, letting scans pipeline into the
// parallel executor without materializing whole tables, and letting LIMIT
// stop a scan early (emit returning false). Emitted slices must remain
// valid after emit returns (they cross a goroutine boundary). Return
// found=false for an unknown name.
type MorselEnv interface {
	ScanTableMorsels(name string, size int, emit func([]model.Record) bool) (found bool)
	ScanConceptMorsels(concept string, semantic bool, size int, emit func([]model.Record) bool) (found bool)
}

// ZoneConjunct is one sargable conjunct pushed below a scan: attr OP
// literal, or attr IN (literals). It mirrors storage.ZonePred without the
// import (query cannot depend on storage).
type ZoneConjunct struct {
	Attr string
	Op   string // "=", "<", "<=", ">", ">=", "in"
	Val  model.Value
	Vals []model.Value // for "in"
}

// PushedScanInfo reports what a pushed-down scan did: the index it chose
// (empty for a plain zone scan) and how many zone segments it pruned.
type PushedScanInfo struct {
	Index    string
	Segments int
	Pruned   int
}

// IndexEnv is an optional extension of MorselEnv for environments whose
// storage supports pushed-down scans (secondary indexes and zone-map
// pruning). The emitted rows may be a superset of those matching the
// conjuncts; the executor re-filters. Environments without it fall back to
// a full scan plus the same filter — identical answers, more work.
type IndexEnv interface {
	ScanTablePushed(name string, zone []ZoneConjunct, emit func([]model.Record) bool) (info PushedScanInfo, found bool)
}

// ExecOptions tunes ExecuteOpts.
type ExecOptions struct {
	// Semantic enables inferred types in ISA/ConceptScan (WITH SEMANTICS).
	Semantic bool
	// Parallelism is the worker-pool size; <=0 means GOMAXPROCS, 1 runs
	// every operator inline. Results are identical for every value.
	Parallelism int
	// MorselSize overrides the rows-per-morsel granule (<=0 = default).
	// It must be held constant for results involving multi-morsel float
	// aggregation to be bit-identical across runs.
	MorselSize int
	// Ctx cancels the query: every worker observes it between morsels and
	// scan producers stop emitting, so a canceled or deadline-expired query
	// frees its workers within one morsel boundary. Nil means Background.
	Ctx context.Context
	// EmitBatch switches ExecuteOpts to streaming delivery: result rows are
	// handed to the sink in columnar batches as morsels drain off the
	// pipeline, and the returned Result carries only the columns (Rows stays
	// nil). cols is identical on every call. Returning false aborts the
	// query with ErrEmitStopped. When the plan fixes no output schema
	// (SELECT * over heterogeneous rows), rows are materialized first to
	// union the columns, then emitted in morsel-size chunks. Emitted row
	// slices must not be mutated by the sink.
	EmitBatch func(cols []string, batch [][]model.Value) bool
}

// ErrEmitStopped reports that an EmitBatch sink returned false: the query
// was aborted mid-stream at the sink's request (typically a dead network
// connection), not by an engine failure.
var ErrEmitStopped = errors.New("query: batch sink stopped consumption")

// Execute runs the plan serially — the exact legacy behavior. semantic
// enables inferred types in ISA/ConceptScan (the WITH SEMANTICS modifier).
func Execute(n Node, env Env, semantic bool) (*Result, error) {
	res, _, err := ExecuteOpts(n, env, ExecOptions{Semantic: semantic, Parallelism: 1})
	return res, err
}

// ExecuteOpts runs the plan with morsel-driven parallelism and returns the
// per-operator stats tree alongside the result. Scans emit fixed-size
// morsels; Filter/Project/probe stages run per-morsel on a worker pool;
// pipeline breakers (Join build, Aggregate, Distinct merge, Sort, TopK)
// merge per-morsel partial states in morsel order, so the output is
// identical for every Parallelism value.
func ExecuteOpts(n Node, env Env, opts ExecOptions) (*Result, *OpStats, error) {
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := opts.MorselSize
	if size <= 0 {
		size = DefaultMorselSize
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	x := &execCtx{ev: &evalCtx{env: env, semantic: opts.Semantic}, workers: workers, size: size, ctx: ctx}
	s, cols, st, err := x.build(n)
	if err != nil {
		x.wg.Wait()
		return nil, nil, err
	}
	if opts.EmitBatch != nil && cols != nil {
		// Streaming delivery: the plan fixed its output schema, so each
		// drained morsel can be materialized and emitted without waiting for
		// the rest of the result.
		err := emitStream(ctx, s, cols, opts.EmitBatch)
		s.stop()
		x.wg.Wait()
		if err != nil {
			return nil, st, err
		}
		return &Result{Columns: cols}, st, nil
	}
	rows, err := drainRows(ctx, s)
	// Join every worker and producer goroutine before returning: they hold
	// references into the environment, which may only be valid while the
	// caller's locks are held.
	s.stop()
	x.wg.Wait()
	if err != nil {
		return nil, st, err
	}
	if cols == nil {
		// The plan's top produced raw rows (no projection) — normalize.
		cols = unionColumns(rows)
	}
	if opts.EmitBatch != nil {
		// Raw-row plan: columns are only known now, so stream the
		// materialized result in morsel-size chunks.
		for lo := 0; lo < len(rows); lo += size {
			hi := min(lo+size, len(rows))
			batch := make([][]model.Value, 0, hi-lo)
			for _, r := range rows[lo:hi] {
				batch = append(batch, materializeRow(cols, r))
			}
			if !opts.EmitBatch(cols, batch) {
				return nil, st, ErrEmitStopped
			}
		}
		return &Result{Columns: cols}, st, nil
	}
	res := &Result{Columns: cols}
	for _, r := range rows {
		res.Rows = append(res.Rows, materializeRow(cols, r))
	}
	return res, st, nil
}

// materializeRow projects one bound row onto the display columns.
func materializeRow(cols []string, r Row) []model.Value {
	out := make([]model.Value, len(cols))
	for i, c := range cols {
		out[i] = r.vals[outKey(c, r)]
	}
	return out
}

// emitStream drains a stream morsel by morsel, materializing each against
// the fixed column schema and handing it to the sink. The context is
// observed between morsels, exactly like drainRows.
func emitStream(ctx context.Context, s *stream, cols []string, emit func([]string, [][]model.Value) bool) error {
	for {
		if err := ctx.Err(); err != nil {
			s.stop()
			return err
		}
		m, ok, err := s.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(m.rows) == 0 {
			continue
		}
		batch := make([][]model.Value, 0, len(m.rows))
		for _, r := range m.rows {
			batch = append(batch, materializeRow(cols, r))
		}
		if !emit(cols, batch) {
			s.stop()
			return ErrEmitStopped
		}
	}
}

// outKey maps a display column back to the row key.
func outKey(col string, r Row) string {
	if k, ok := displayToKey(col, r); ok {
		return k
	}
	return "\x00" + col
}

func displayToKey(col string, r Row) (string, bool) {
	if i := strings.Index(col, "."); i >= 0 {
		k := rowKey(col[:i], col[i+1:])
		if _, ok := r.vals[k]; ok {
			return k, true
		}
	}
	k := rowKey("", col)
	if _, ok := r.vals[k]; ok {
		return k, true
	}
	// Single-binding shortcut: column without qualifier.
	for key := range r.vals {
		if strings.HasSuffix(key, "\x00"+col) {
			return key, true
		}
	}
	return "", false
}

// execCtx carries the per-query execution configuration. ev is read-only
// after construction and therefore safe to share across workers.
type execCtx struct {
	ev      *evalCtx
	workers int
	size    int
	ctx     context.Context
	wg      sync.WaitGroup // joins stage workers and scan producers
}

// stage wraps parStage with a per-morsel cancellation check: a canceled
// context surfaces as the stage's error before the next morsel is
// processed, so workers exit within one morsel boundary.
func (x *execCtx) stage(in *stream, workers int, fn func(morsel) (morsel, error)) *stream {
	return parStage(in, workers, &x.wg, func(m morsel) (morsel, error) {
		if err := x.ctx.Err(); err != nil {
			return morsel{}, err
		}
		return fn(m)
	})
}

// build lowers a plan node to a morsel stream; cols is non-nil once a
// projection or aggregation fixed the output schema (binding "" labels).
func (x *execCtx) build(n Node) (s *stream, cols []string, st *OpStats, err error) {
	switch n := n.(type) {
	case *ScanNode:
		return x.buildScan(n)
	case *IndexScanNode:
		return x.buildIndexScan(n)
	case *ConceptScanNode:
		return x.buildConceptScan(n)
	case *EmptyNode:
		return emptyStream(), nil, newOpStats(n), nil
	case *FilterNode:
		return x.buildFilter(n)
	case *JoinNode:
		return x.buildJoin(n)
	case *ProjectNode:
		return x.buildProject(n)
	case *AggregateNode:
		return x.buildAggregate(n)
	case *DistinctNode:
		return x.buildDistinct(n)
	case *SortNode:
		return x.buildSort(n)
	case *TopKNode:
		return x.buildTopK(n)
	case *LimitNode:
		return x.buildLimit(n)
	}
	return nil, nil, nil, fmt.Errorf("query: cannot execute %T", n)
}

// bindStage turns record morsels from a scan source into bound rows on the
// worker pool.
func (x *execCtx) bindStage(src *stream, binding string, st *OpStats) *stream {
	return x.stage(src, x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		rows := bindRecords(m.recs, binding)
		st.tally(len(rows), len(rows), time.Since(t0))
		return morsel{rows: rows}, nil
	})
}

// recSliceStream chunks materialized records into morsels (the fallback
// for environments without MorselEnv).
func recSliceStream(recs []model.Record, size int) *stream {
	i, idx := 0, 0
	return &stream{
		next: func() (morsel, bool, error) {
			if i >= len(recs) {
				return morsel{}, false, nil
			}
			end := i + size
			if end > len(recs) {
				end = len(recs)
			}
			m := morsel{idx: idx, recs: recs[i:end]}
			i, idx = end, idx+1
			return m, true, nil
		},
		stop: func() {},
	}
}

func (x *execCtx) buildScan(n *ScanNode) (*stream, []string, *OpStats, error) {
	st := newOpStats(n)
	if me, ok := x.ev.env.(MorselEnv); ok {
		table, size := n.Table, x.size
		src := goSource(x.ctx, &x.wg, func(emit func([]model.Record) bool) error {
			if !me.ScanTableMorsels(table, size, emit) {
				return fmt.Errorf("query: unknown table %q", table)
			}
			return nil
		})
		return x.bindStage(src, n.Binding, st), nil, st, nil
	}
	recs, ok := x.ev.env.ScanTable(n.Table)
	if !ok {
		return nil, nil, nil, fmt.Errorf("query: unknown table %q", n.Table)
	}
	return x.bindStage(recSliceStream(recs, x.size), n.Binding, st), nil, st, nil
}

// buildIndexScan is a fused scan+filter: storage streams candidate rows
// (via index lookup and zone-map pruning when the env supports it), and
// the worker stage binds them and re-applies the full predicate. The
// fallbacks — MorselEnv streaming or a materialized ScanTable — run the
// same filter over the whole table, so answers are identical whichever
// capability the environment has.
func (x *execCtx) buildIndexScan(n *IndexScanNode) (*stream, []string, *OpStats, error) {
	st := newOpStats(n)
	st.ShowPruned = true
	var src *stream
	switch env := x.ev.env.(type) {
	case IndexEnv:
		table, zone := n.Table, n.Zone
		src = goSource(x.ctx, &x.wg, func(emit func([]model.Record) bool) error {
			info, found := env.ScanTablePushed(table, zone, emit)
			if !found {
				return fmt.Errorf("query: unknown table %q", table)
			}
			// Plain writes are safe: ExecuteOpts joins this producer
			// (x.wg) before anyone reads the stats tree.
			st.Pruned = int64(info.Pruned)
			st.IndexName = info.Index
			return nil
		})
	case MorselEnv:
		table, size := n.Table, x.size
		src = goSource(x.ctx, &x.wg, func(emit func([]model.Record) bool) error {
			if !env.ScanTableMorsels(table, size, emit) {
				return fmt.Errorf("query: unknown table %q", table)
			}
			return nil
		})
	default:
		recs, ok := x.ev.env.ScanTable(n.Table)
		if !ok {
			return nil, nil, nil, fmt.Errorf("query: unknown table %q", n.Table)
		}
		src = recSliceStream(recs, x.size)
	}
	binding, pred := n.Binding, n.Pred
	s := x.stage(src, x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		rows := bindRecords(m.recs, binding)
		var out []Row
		for _, r := range rows {
			v, err := x.ev.Eval(pred, r)
			if err != nil {
				return morsel{}, err
			}
			t, err := truth3(v)
			if err != nil {
				return morsel{}, err
			}
			if t == model.True {
				out = append(out, r)
			}
		}
		st.tally(len(rows), len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, nil, st, nil
}

func (x *execCtx) buildConceptScan(n *ConceptScanNode) (*stream, []string, *OpStats, error) {
	st := newOpStats(n)
	semantic := n.Semantic || x.ev.semantic
	if me, ok := x.ev.env.(MorselEnv); ok {
		concept, size := n.Concept, x.size
		src := goSource(x.ctx, &x.wg, func(emit func([]model.Record) bool) error {
			if !me.ScanConceptMorsels(concept, semantic, size, emit) {
				return fmt.Errorf("query: unknown concept %q", concept)
			}
			return nil
		})
		return x.bindStage(src, n.Binding, st), nil, st, nil
	}
	recs, ok := x.ev.env.ScanConcept(n.Concept, semantic)
	if !ok {
		return nil, nil, nil, fmt.Errorf("query: unknown concept %q", n.Concept)
	}
	return x.bindStage(recSliceStream(recs, x.size), n.Binding, st), nil, st, nil
}

func (x *execCtx) buildFilter(n *FilterNode) (*stream, []string, *OpStats, error) {
	in, cols, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	pred := n.Pred
	s := x.stage(in, x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		var out []Row
		for _, r := range m.rows {
			v, err := x.ev.Eval(pred, r)
			if err != nil {
				return morsel{}, err
			}
			t, err := truth3(v)
			if err != nil {
				return morsel{}, err
			}
			if t == model.True {
				out = append(out, r)
			}
		}
		st.tally(len(m.rows), len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, cols, st, nil
}

func (x *execCtx) buildProject(n *ProjectNode) (*stream, []string, *OpStats, error) {
	in, _, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	if n.Star {
		// SELECT * derives its schema from the full input, so this is a
		// pipeline breaker.
		rows, err := drainRows(x.ctx, in)
		if err != nil {
			return nil, nil, nil, err
		}
		t0 := time.Now()
		cols := unionColumns(rows)
		st.tallyRows(len(rows), len(rows), time.Since(t0))
		return sliceStream(rows, x.size), cols, st, nil
	}
	cols := make([]string, len(n.Items))
	for i, it := range n.Items {
		cols[i] = it.Label()
	}
	items := n.Items
	s := x.stage(in, x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		out := make([]Row, 0, len(m.rows))
		for _, r := range m.rows {
			nr := newRow()
			for i, it := range items {
				v, err := x.ev.Eval(it.Expr, r)
				if err != nil {
					return morsel{}, err
				}
				nr.Set("", cols[i], v)
			}
			out = append(out, nr)
		}
		st.tally(len(m.rows), len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, cols, st, nil
}

// equiJoinCols recognizes "a.x = b.y" predicates joining the two sides.
func equiJoinCols(on Expr) (l, r *ColRef, ok bool) {
	b, isBin := on.(*Binary)
	if !isBin || b.Op != "=" {
		return nil, nil, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok || lc.Binding == "" || rc.Binding == "" {
		return nil, nil, false
	}
	return lc, rc, true
}

func (x *execCtx) buildJoin(n *JoinNode) (*stream, []string, *OpStats, error) {
	ls, _, lst, err := x.build(n.L)
	if err != nil {
		return nil, nil, nil, err
	}
	rs, _, rst, err := x.build(n.R)
	if err != nil {
		ls.stop()
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{lst, rst}
	lrows, err := drainRows(x.ctx, ls)
	if err != nil {
		rs.stop()
		return nil, nil, nil, err
	}
	rrows, err := drainRows(x.ctx, rs)
	if err != nil {
		return nil, nil, nil, err
	}
	if lc, rc, ok := equiJoinCols(n.On); ok {
		return x.buildHashJoin(n, st, lrows, rrows, lc, rc)
	}
	// Nested-loop join with three-valued predicate: stream the left side,
	// each morsel scanning the full right side.
	st.tallyRows(len(lrows)+len(rrows), 0, 0)
	on := n.On
	s := x.stage(sliceStream(lrows, x.size), x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		var out []Row
		for _, lr := range m.rows {
			for _, rr := range rrows {
				merged := lr.merge(rr)
				v, err := x.ev.Eval(on, merged)
				if err != nil {
					return morsel{}, err
				}
				t, err := truth3(v)
				if err != nil {
					return morsel{}, err
				}
				if t == model.True {
					out = append(out, merged)
				}
			}
		}
		st.tally(0, len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, nil, st, nil
}

// buildHashJoin builds the hash table over the smaller side in parallel
// partitions, then probes per-morsel on the worker pool. Partition maps are
// each populated by one worker scanning the build side in index order, so
// bucket ordering — and therefore output ordering — matches the serial
// build exactly.
func (x *execCtx) buildHashJoin(n *JoinNode, st *OpStats, lrows, rrows []Row, lc, rc *ColRef) (*stream, []string, *OpStats, error) {
	t0 := time.Now()
	// Orient columns to sides.
	probeCol, buildCol := lc, rc
	if len(lrows) > 0 && !lrows[0].bindings[lc.Binding] {
		probeCol, buildCol = rc, lc
	}
	// Build on the smaller side.
	build, probe := rrows, lrows
	bCol, pCol := buildCol, probeCol
	if len(lrows) < len(rrows) {
		build, probe = lrows, rrows
		bCol, pCol = probeCol, buildCol
	}
	// Phase 1: hash the build keys in parallel.
	type buildKey struct {
		h  uint64
		ok bool
	}
	bkeys := make([]buildKey, len(build))
	x.parRange(len(build), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v, err := build[i].Lookup(bCol.Binding, bCol.Name)
			if err == nil && !v.IsNull() {
				bkeys[i] = buildKey{v.Hash(), true}
			}
		}
	})
	// Phase 2: one partition map per worker, each scanning all keys and
	// keeping its own residue class.
	nparts := uint64(x.workers)
	parts := make([]map[uint64][]int, nparts)
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := map[uint64][]int{}
			for i, k := range bkeys {
				if k.ok && k.h%nparts == uint64(w) {
					m[k.h] = append(m[k.h], i)
				}
			}
			parts[w] = m
		}(w)
	}
	wg.Wait()
	st.tallyRows(len(lrows)+len(rrows), 0, time.Since(t0))

	s := x.stage(sliceStream(probe, x.size), x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		var out []Row
		for _, pr := range m.rows {
			v, err := pr.Lookup(pCol.Binding, pCol.Name)
			if err != nil || v.IsNull() {
				continue
			}
			h := v.Hash()
			for _, bi := range parts[h%nparts][h] {
				br := build[bi]
				bv, _ := br.Lookup(bCol.Binding, bCol.Name)
				if model.Equal(v, bv) {
					out = append(out, pr.merge(br))
				}
			}
		}
		st.tally(0, len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, nil, st, nil
}

// parRange splits [0, n) into contiguous chunks across the worker pool.
func (x *execCtx) parRange(n int, fn func(lo, hi int)) {
	w := x.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (x *execCtx) buildDistinct(n *DistinctNode) (*stream, []string, *OpStats, error) {
	in, cols, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	// Hash rows in parallel; dedupe serially in morsel order (first
	// occurrence wins, as in the serial executor).
	hashed := x.stage(in, x.workers, func(m morsel) (morsel, error) {
		hs := make([]uint64, len(m.rows))
		for i, r := range m.rows {
			hs[i] = rowHash(r)
		}
		m.hashes = hs
		return m, nil
	})
	d := &deduper{buckets: map[uint64][]Row{}}
	s := x.stage(hashed, 1, func(m morsel) (morsel, error) {
		t0 := time.Now()
		var out []Row
		for i, r := range m.rows {
			if d.keep(r, m.hashes[i]) {
				out = append(out, r)
			}
		}
		st.tally(len(m.rows), len(out), time.Since(t0))
		return morsel{rows: out}, nil
	})
	return s, cols, st, nil
}

// deduper keeps first row occurrences, comparing full rows within each
// hash bucket so that hash collisions never merge distinct rows.
type deduper struct {
	buckets map[uint64][]Row
}

func (d *deduper) keep(r Row, h uint64) bool {
	for _, p := range d.buckets[h] {
		if rowsEqual(p, r) {
			return false
		}
	}
	d.buckets[h] = append(d.buckets[h], r)
	return true
}

// rowsEqual reports whether two rows carry the same keys and values
// (null equals null, as DISTINCT requires).
func rowsEqual(a, b Row) bool {
	if len(a.vals) != len(b.vals) {
		return false
	}
	for k, va := range a.vals {
		vb, ok := b.vals[k]
		if !ok {
			return false
		}
		if va.IsNull() || vb.IsNull() {
			if va.IsNull() != vb.IsNull() {
				return false
			}
			continue
		}
		if !model.Equal(va, vb) {
			return false
		}
	}
	return true
}

// attachKeys evaluates the sort keys for every row on the worker pool,
// attaching them to the morsel for a downstream Sort or TopK consumer.
func (x *execCtx) attachKeys(in *stream, keys []OrderKey, st *OpStats) *stream {
	return x.stage(in, x.workers, func(m morsel) (morsel, error) {
		t0 := time.Now()
		ks := make([][]model.Value, len(m.rows))
		for i, r := range m.rows {
			kv := make([]model.Value, len(keys))
			for j, k := range keys {
				v, err := x.ev.Eval(k.Expr, r)
				if err != nil {
					return morsel{}, err
				}
				kv[j] = v
			}
			ks[i] = kv
		}
		m.keys = ks
		st.tally(len(m.rows), 0, time.Since(t0))
		return m, nil
	})
}

type keyedRow struct {
	row  Row
	keys []model.Value
	idx  int // original input position, the stable-sort tiebreaker
}

// keyedLess orders by the sort keys, breaking ties by input position — the
// total order equivalent to a stable sort on the keys alone.
func keyedLess(keys []OrderKey, a, b keyedRow) bool {
	for j, k := range keys {
		va, vb := a.keys[j], b.keys[j]
		if model.Equal(va, vb) {
			continue
		}
		less := model.Less(va, vb)
		if k.Desc {
			return !less
		}
		return less
	}
	return a.idx < b.idx
}

func (x *execCtx) buildSort(n *SortNode) (*stream, []string, *OpStats, error) {
	in, cols, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	keyed := x.attachKeys(in, n.Keys, st)
	var flat []keyedRow
	for {
		m, ok, err := keyed.next()
		if err != nil {
			return nil, nil, nil, err
		}
		if !ok {
			break
		}
		for i, r := range m.rows {
			flat = append(flat, keyedRow{row: r, keys: m.keys[i], idx: len(flat)})
		}
	}
	t0 := time.Now()
	sort.SliceStable(flat, func(a, b int) bool {
		for j, k := range n.Keys {
			va, vb := flat[a].keys[j], flat[b].keys[j]
			if model.Equal(va, vb) {
				continue
			}
			less := model.Less(va, vb)
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
	rows := make([]Row, len(flat))
	for i := range flat {
		rows[i] = flat[i].row
	}
	st.tallyRows(0, len(rows), time.Since(t0))
	return sliceStream(rows, x.size), cols, st, nil
}

// topkHeap is a bounded max-heap over keyedRows: the root is the largest
// element in sort order, evicted whenever the heap exceeds K.
type topkHeap struct {
	items []keyedRow
	keys  []OrderKey
}

func (h *topkHeap) Len() int           { return len(h.items) }
func (h *topkHeap) Less(i, j int) bool { return keyedLess(h.keys, h.items[j], h.items[i]) }
func (h *topkHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topkHeap) Push(v any)         { h.items = append(h.items, v.(keyedRow)) }
func (h *topkHeap) Pop() any {
	v := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return v
}

func (x *execCtx) buildTopK(n *TopKNode) (*stream, []string, *OpStats, error) {
	in, cols, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	keyed := x.attachKeys(in, n.Keys, st)
	h := &topkHeap{keys: n.Keys}
	idx := 0
	for {
		m, ok, err := keyed.next()
		if err != nil {
			return nil, nil, nil, err
		}
		if !ok {
			break
		}
		t0 := time.Now()
		for i, r := range m.rows {
			if n.N > 0 {
				heap.Push(h, keyedRow{row: r, keys: m.keys[i], idx: idx})
				if h.Len() > n.N {
					heap.Pop(h)
				}
			}
			idx++
		}
		st.tallyRows(0, 0, time.Since(t0))
	}
	t0 := time.Now()
	items := h.items
	sort.Slice(items, func(a, b int) bool { return keyedLess(n.Keys, items[a], items[b]) })
	rows := make([]Row, len(items))
	for i := range items {
		rows[i] = items[i].row
	}
	st.tallyRows(0, len(rows), time.Since(t0))
	return sliceStream(rows, x.size), cols, st, nil
}

func (x *execCtx) buildLimit(n *LimitNode) (*stream, []string, *OpStats, error) {
	in, cols, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	taken, stopped := 0, false
	s := &stream{
		next: func() (morsel, bool, error) {
			if taken >= n.N {
				if !stopped {
					stopped = true
					in.stop()
				}
				return morsel{}, false, nil
			}
			m, ok, err := in.next()
			if err != nil || !ok {
				return morsel{}, false, err
			}
			inRows := len(m.rows)
			if taken+len(m.rows) > n.N {
				m.rows = m.rows[:n.N-taken]
			}
			taken += len(m.rows)
			if taken >= n.N && !stopped {
				// Enough rows: cancel the upstream producers right away.
				stopped = true
				in.stop()
			}
			st.tally(inRows, len(m.rows), 0)
			return m, true, nil
		},
		stop: in.stop,
	}
	return s, cols, st, nil
}

// --- aggregation -------------------------------------------------------

// aggState is the mergeable partial state of one aggregate call over one
// group. Errors are deferred, mirroring the serial executor's laziness: an
// argument-eval error always outranks a non-numeric error (the serial code
// evaluated all arguments before type-checking any), and neither surfaces
// unless the group survives HAVING and the call is actually finalized.
type aggState struct {
	count   int64 // non-null values (numeric ones for SUM/AVG)
	fsum    float64
	isum    int64
	allInt  bool
	best    model.Value
	hasBest bool
	evalErr error
	numErr  error
}

func newAggStates(n int) []aggState {
	states := make([]aggState, n)
	for i := range states {
		states[i].allInt = true
	}
	return states
}

func (a *aggState) add(ev *evalCtx, call *Call, r Row) {
	if a.evalErr != nil {
		return
	}
	if call.Star || len(call.Args) != 1 {
		return // finalizeAgg raises the proper error per call shape
	}
	v, err := ev.Eval(call.Args[0], r)
	if err != nil {
		a.evalErr = err
		return
	}
	if v.IsNull() {
		return
	}
	switch call.Name {
	case "COUNT":
		a.count++
	case "SUM", "AVG":
		f, ok := v.AsFloat()
		if !ok {
			if a.numErr == nil {
				a.numErr = fmt.Errorf("query: %s over non-numeric value %s", call.Name, v)
			}
			return
		}
		a.count++
		a.fsum += f
		if i, ok := v.AsInt(); ok {
			a.isum += i
		} else {
			a.allInt = false
		}
	case "MIN", "MAX":
		if !a.hasBest {
			a.best, a.hasBest = v, true
			return
		}
		if (call.Name == "MIN" && model.Less(v, a.best)) ||
			(call.Name == "MAX" && model.Less(a.best, v)) {
			a.best = v
		}
	}
}

// mergeFrom folds a later morsel's partial state into this one. Earlier
// errors win, matching row order.
func (a *aggState) mergeFrom(b *aggState, call *Call) {
	if a.evalErr == nil {
		a.evalErr = b.evalErr
	}
	if a.numErr == nil {
		a.numErr = b.numErr
	}
	a.count += b.count
	a.fsum += b.fsum
	a.isum += b.isum
	a.allInt = a.allInt && b.allInt
	if b.hasBest {
		if !a.hasBest {
			a.best, a.hasBest = b.best, true
		} else if (call.Name == "MIN" && model.Less(b.best, a.best)) ||
			(call.Name == "MAX" && model.Less(a.best, b.best)) {
			a.best = b.best
		}
	}
}

// groupAgg is one group's accumulated state: row count, the representative
// row (first in row order, used for non-aggregate expressions), and one
// aggState per collected aggregate call.
type groupAgg struct {
	n      int64
	rep    Row
	hasRep bool
	states []aggState
}

// groupPartial is one morsel's grouping result; order lists group hashes by
// first encounter.
type groupPartial struct {
	order  []uint64
	groups map[uint64]*groupAgg
}

// collectAggCalls gathers the distinct aggregate calls that finalization
// will need states for. The walk descends exactly where grouped evaluation
// descends (top-level calls and Binary operands); aggregates nested
// anywhere else error at eval time and need no state.
func collectAggCalls(n *AggregateNode) []*Call {
	var calls []*Call
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Call:
			if aggFuncs[e.Name] && !seen[e.String()] {
				seen[e.String()] = true
				calls = append(calls, e)
			}
		case *Binary:
			walk(e.L)
			walk(e.R)
		}
	}
	for _, it := range n.Items {
		walk(it.Expr)
	}
	if n.Having != nil {
		walk(n.Having)
	}
	return calls
}

func finalizeAgg(call *Call, g *groupAgg, idx int) (model.Value, error) {
	if call.Star {
		if call.Name != "COUNT" {
			return model.Value{}, fmt.Errorf("query: %s(*) is not valid", call.Name)
		}
		return model.Int(g.n), nil
	}
	if len(call.Args) != 1 {
		return model.Value{}, fmt.Errorf("query: %s takes exactly 1 argument", call.Name)
	}
	a := &g.states[idx]
	if a.evalErr != nil {
		return model.Value{}, a.evalErr
	}
	switch call.Name {
	case "COUNT":
		return model.Int(a.count), nil
	case "SUM":
		if a.numErr != nil {
			return model.Value{}, a.numErr
		}
		if a.count == 0 {
			return model.Null(), nil
		}
		if a.allInt {
			return model.Int(a.isum), nil
		}
		return model.Float(a.fsum), nil
	case "AVG":
		if a.numErr != nil {
			return model.Value{}, a.numErr
		}
		if a.count == 0 {
			return model.Null(), nil
		}
		return model.Float(a.fsum / float64(a.count)), nil
	case "MIN", "MAX":
		if !a.hasBest {
			return model.Null(), nil
		}
		return a.best, nil
	}
	return model.Value{}, fmt.Errorf("query: unknown aggregate %s", call.Name)
}

// evalFromStates evaluates a grouped expression from merged partial states:
// aggregate calls finalize their state; everything else evaluates on the
// group's representative row.
func (x *execCtx) evalFromStates(e Expr, g *groupAgg, callIdx map[string]int) (model.Value, error) {
	switch e := e.(type) {
	case *Call:
		if aggFuncs[e.Name] {
			return finalizeAgg(e, g, callIdx[e.String()])
		}
	case *Binary:
		if containsAggregate(e.L) || containsAggregate(e.R) {
			l, err := x.evalFromStates(e.L, g, callIdx)
			if err != nil {
				return model.Value{}, err
			}
			r, err := x.evalFromStates(e.R, g, callIdx)
			if err != nil {
				return model.Value{}, err
			}
			return x.ev.Eval(&Binary{Op: e.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, newRow())
		}
	}
	if !g.hasRep {
		return model.Null(), nil
	}
	return x.ev.Eval(e, g.rep)
}

func (x *execCtx) buildAggregate(n *AggregateNode) (*stream, []string, *OpStats, error) {
	in, _, cst, err := x.build(n.Input)
	if err != nil {
		return nil, nil, nil, err
	}
	st := newOpStats(n)
	st.Children = []*OpStats{cst}
	cols := make([]string, len(n.Items))
	for i, it := range n.Items {
		cols[i] = it.Label()
	}
	calls := collectAggCalls(n)
	callIdx := make(map[string]int, len(calls))
	for i, c := range calls {
		callIdx[c.String()] = i
	}

	// Phase 1: per-morsel partial grouping on the worker pool.
	partials, err := parMap(in, x.workers, func(m morsel) (*groupPartial, error) {
		if err := x.ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		gp := &groupPartial{groups: map[uint64]*groupAgg{}}
		for _, r := range m.rows {
			keysHash := uint64(1469598103934665603)
			for _, g := range n.GroupBy {
				v, err := x.ev.Eval(g, r)
				if err != nil {
					return nil, err
				}
				keysHash = keysHash*1099511628211 ^ v.Hash()
			}
			ga, ok := gp.groups[keysHash]
			if !ok {
				ga = &groupAgg{rep: r, hasRep: true, states: newAggStates(len(calls))}
				gp.groups[keysHash] = ga
				gp.order = append(gp.order, keysHash)
			}
			ga.n++
			for i, c := range calls {
				ga.states[i].add(x.ev, c, r)
			}
		}
		st.tally(len(m.rows), 0, time.Since(t0))
		return gp, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Phase 2: merge partials in morsel order — group order and float
	// accumulation order depend only on morsel boundaries, never on the
	// worker count.
	t0 := time.Now()
	total := &groupPartial{groups: map[uint64]*groupAgg{}}
	for _, gp := range partials {
		for _, h := range gp.order {
			g := gp.groups[h]
			t, ok := total.groups[h]
			if !ok {
				total.groups[h] = g
				total.order = append(total.order, h)
				continue
			}
			t.n += g.n
			for i := range t.states {
				t.states[i].mergeFrom(&g.states[i], calls[i])
			}
		}
	}
	// A global aggregate over zero rows still yields one group.
	if len(total.order) == 0 && len(n.GroupBy) == 0 {
		total.groups[0] = &groupAgg{states: newAggStates(len(calls))}
		total.order = append(total.order, 0)
	}

	// Phase 3: HAVING and finalization, serial in group order.
	var out []Row
	for _, h := range total.order {
		g := total.groups[h]
		if n.Having != nil {
			hv, err := x.evalFromStates(n.Having, g, callIdx)
			if err != nil {
				return nil, nil, nil, err
			}
			ht, err := truth3(hv)
			if err != nil {
				return nil, nil, nil, err
			}
			if ht != model.True {
				continue
			}
		}
		nr := newRow()
		for i, it := range n.Items {
			v, err := x.evalFromStates(it.Expr, g, callIdx)
			if err != nil {
				return nil, nil, nil, err
			}
			nr.Set("", cols[i], v)
		}
		out = append(out, nr)
	}
	st.tallyRows(0, len(out), time.Since(t0))
	return sliceStream(out, x.size), cols, st, nil
}

// --- shared helpers ----------------------------------------------------

// rowHash hashes every column of a row, order-independently but
// key-sensitively, for DISTINCT bucketing.
func rowHash(r Row) uint64 {
	var h uint64
	for k, v := range r.vals {
		h ^= model.String(k).Hash()*31 + v.Hash()
	}
	return h
}

func bindRecords(recs []model.Record, binding string) []Row {
	rows := make([]Row, len(recs))
	for i, rec := range recs {
		r := newRow()
		r.bindings[binding] = true
		for k, v := range rec {
			r.Set(binding, k, v)
		}
		rows[i] = r
	}
	return rows
}

// unionColumns derives display columns from raw rows: "binding.name" when
// several bindings exist, bare names otherwise, sorted.
func unionColumns(rows []Row) []string {
	keys := map[string]bool{}
	bindings := map[string]bool{}
	for _, r := range rows {
		for k := range r.vals {
			keys[k] = true
		}
		for b := range r.bindings {
			bindings[b] = true
		}
	}
	multi := len(bindings) > 1
	var cols []string
	for k := range keys {
		i := strings.Index(k, "\x00")
		b, name := k[:i], k[i+1:]
		if multi && b != "" {
			cols = append(cols, b+"."+name)
		} else {
			cols = append(cols, name)
		}
	}
	sort.Strings(cols)
	return cols
}
