package query

import (
	"fmt"
	"sort"
	"strings"

	"scdb/internal/model"
)

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]model.Value
}

// Execute runs the plan against the environment. semantic enables inferred
// types in ISA/ConceptScan (the WITH SEMANTICS modifier).
func Execute(n Node, env Env, semantic bool) (*Result, error) {
	ctx := &evalCtx{env: env, semantic: semantic}
	rows, cols, err := run(n, ctx)
	if err != nil {
		return nil, err
	}
	if cols == nil {
		// The plan's top produced raw rows (no projection) — normalize.
		cols = unionColumns(rows)
	}
	res := &Result{Columns: cols}
	for _, r := range rows {
		out := make([]model.Value, len(cols))
		for i, c := range cols {
			out[i] = r.vals[outKey(c, r)]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// outKey maps a display column back to the row key.
func outKey(col string, r Row) string {
	if k, ok := displayToKey(col, r); ok {
		return k
	}
	return "\x00" + col
}

func displayToKey(col string, r Row) (string, bool) {
	if i := strings.Index(col, "."); i >= 0 {
		k := rowKey(col[:i], col[i+1:])
		if _, ok := r.vals[k]; ok {
			return k, true
		}
	}
	k := rowKey("", col)
	if _, ok := r.vals[k]; ok {
		return k, true
	}
	// Single-binding shortcut: column without qualifier.
	for key := range r.vals {
		if strings.HasSuffix(key, "\x00"+col) {
			return key, true
		}
	}
	return "", false
}

// run evaluates a plan node to rows; cols is non-nil once a projection or
// aggregation fixed the output schema (binding "" labels).
func run(n Node, ctx *evalCtx) (rows []Row, cols []string, err error) {
	switch n := n.(type) {
	case *ScanNode:
		recs, ok := ctx.env.ScanTable(n.Table)
		if !ok {
			return nil, nil, fmt.Errorf("query: unknown table %q", n.Table)
		}
		return bindRecords(recs, n.Binding), nil, nil
	case *ConceptScanNode:
		recs, ok := ctx.env.ScanConcept(n.Concept, n.Semantic || ctx.semantic)
		if !ok {
			return nil, nil, fmt.Errorf("query: unknown concept %q", n.Concept)
		}
		return bindRecords(recs, n.Binding), nil, nil
	case *EmptyNode:
		return nil, nil, nil
	case *FilterNode:
		in, cols, err := run(n.Input, ctx)
		if err != nil {
			return nil, nil, err
		}
		var out []Row
		for _, r := range in {
			v, err := ctx.Eval(n.Pred, r)
			if err != nil {
				return nil, nil, err
			}
			t, err := truth3(v)
			if err != nil {
				return nil, nil, err
			}
			if t == model.True {
				out = append(out, r)
			}
		}
		return out, cols, nil
	case *JoinNode:
		return runJoin(n, ctx)
	case *ProjectNode:
		in, _, err := run(n.Input, ctx)
		if err != nil {
			return nil, nil, err
		}
		if n.Star {
			return in, unionColumns(in), nil
		}
		cols := make([]string, len(n.Items))
		for i, it := range n.Items {
			cols[i] = it.Label()
		}
		var out []Row
		for _, r := range in {
			nr := newRow()
			for i, it := range n.Items {
				v, err := ctx.Eval(it.Expr, r)
				if err != nil {
					return nil, nil, err
				}
				nr.Set("", cols[i], v)
			}
			out = append(out, nr)
		}
		return out, cols, nil
	case *AggregateNode:
		return runAggregate(n, ctx)
	case *DistinctNode:
		in, cols, err := run(n.Input, ctx)
		if err != nil {
			return nil, nil, err
		}
		seen := map[uint64]bool{}
		var out []Row
		for _, r := range in {
			h := rowHash(r)
			if !seen[h] {
				seen[h] = true
				out = append(out, r)
			}
		}
		return out, cols, nil
	case *SortNode:
		in, cols, err := run(n.Input, ctx)
		if err != nil {
			return nil, nil, err
		}
		type keyed struct {
			row  Row
			keys []model.Value
		}
		ks := make([]keyed, len(in))
		for i, r := range in {
			kv := make([]model.Value, len(n.Keys))
			for j, k := range n.Keys {
				v, err := ctx.Eval(k.Expr, r)
				if err != nil {
					return nil, nil, err
				}
				kv[j] = v
			}
			ks[i] = keyed{r, kv}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j, k := range n.Keys {
				va, vb := ks[a].keys[j], ks[b].keys[j]
				if model.Equal(va, vb) {
					continue
				}
				less := model.Less(va, vb)
				if k.Desc {
					return !less
				}
				return less
			}
			return false
		})
		out := make([]Row, len(ks))
		for i := range ks {
			out[i] = ks[i].row
		}
		return out, cols, nil
	case *LimitNode:
		in, cols, err := run(n.Input, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(in) > n.N {
			in = in[:n.N]
		}
		return in, cols, nil
	}
	return nil, nil, fmt.Errorf("query: cannot execute %T", n)
}

// rowHash hashes every column of a row, order-independently but
// key-sensitively, for DISTINCT.
func rowHash(r Row) uint64 {
	var h uint64
	for k, v := range r.vals {
		h ^= model.String(k).Hash()*31 + v.Hash()
	}
	return h
}

func bindRecords(recs []model.Record, binding string) []Row {
	rows := make([]Row, len(recs))
	for i, rec := range recs {
		r := newRow()
		r.bindings[binding] = true
		for k, v := range rec {
			r.Set(binding, k, v)
		}
		rows[i] = r
	}
	return rows
}

// equiJoinCols recognizes "a.x = b.y" predicates joining the two sides.
func equiJoinCols(on Expr) (l, r *ColRef, ok bool) {
	b, isBin := on.(*Binary)
	if !isBin || b.Op != "=" {
		return nil, nil, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok || lc.Binding == "" || rc.Binding == "" {
		return nil, nil, false
	}
	return lc, rc, true
}

func runJoin(n *JoinNode, ctx *evalCtx) ([]Row, []string, error) {
	lrows, _, err := run(n.L, ctx)
	if err != nil {
		return nil, nil, err
	}
	rrows, _, err := run(n.R, ctx)
	if err != nil {
		return nil, nil, err
	}
	if lc, rc, ok := equiJoinCols(n.On); ok {
		// Orient columns to sides.
		probeCol, buildCol := lc, rc
		if len(lrows) > 0 && !lrows[0].bindings[lc.Binding] {
			probeCol, buildCol = rc, lc
		}
		// Hash join: build on the smaller side.
		build, probe := rrows, lrows
		bCol, pCol := buildCol, probeCol
		if len(lrows) < len(rrows) {
			build, probe = lrows, rrows
			bCol, pCol = probeCol, buildCol
		}
		ht := make(map[uint64][]Row, len(build))
		for _, r := range build {
			v, err := r.Lookup(bCol.Binding, bCol.Name)
			if err != nil || v.IsNull() {
				continue
			}
			h := v.Hash()
			ht[h] = append(ht[h], r)
		}
		var out []Row
		for _, pr := range probe {
			v, err := pr.Lookup(pCol.Binding, pCol.Name)
			if err != nil || v.IsNull() {
				continue
			}
			for _, br := range ht[v.Hash()] {
				bv, _ := br.Lookup(bCol.Binding, bCol.Name)
				if model.Equal(v, bv) {
					out = append(out, pr.merge(br))
				}
			}
		}
		return out, nil, nil
	}
	// Nested-loop join with three-valued predicate.
	var out []Row
	for _, lr := range lrows {
		for _, rr := range rrows {
			merged := lr.merge(rr)
			v, err := ctx.Eval(n.On, merged)
			if err != nil {
				return nil, nil, err
			}
			t, err := truth3(v)
			if err != nil {
				return nil, nil, err
			}
			if t == model.True {
				out = append(out, merged)
			}
		}
	}
	return out, nil, nil
}

func runAggregate(n *AggregateNode, ctx *evalCtx) ([]Row, []string, error) {
	in, _, err := run(n.Input, ctx)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(n.Items))
	for i, it := range n.Items {
		cols[i] = it.Label()
	}

	type group struct {
		keys []model.Value
		rows []Row
	}
	groups := map[uint64]*group{}
	var order []uint64
	for _, r := range in {
		keys := make([]model.Value, len(n.GroupBy))
		h := uint64(1469598103934665603)
		for i, g := range n.GroupBy {
			v, err := ctx.Eval(g, r)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = v
			h = h*1099511628211 ^ v.Hash()
		}
		gr, ok := groups[h]
		if !ok {
			gr = &group{keys: keys}
			groups[h] = gr
			order = append(order, h)
		}
		gr.rows = append(gr.rows, r)
	}
	// A global aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(n.GroupBy) == 0 {
		h := uint64(0)
		groups[h] = &group{}
		order = append(order, h)
	}

	var out []Row
	for _, h := range order {
		gr := groups[h]
		if n.Having != nil {
			hv, err := evalWithAggregates(ctx, n.Having, gr.rows)
			if err != nil {
				return nil, nil, err
			}
			ht, err := truth3(hv)
			if err != nil {
				return nil, nil, err
			}
			if ht != model.True {
				continue
			}
		}
		nr := newRow()
		for i, it := range n.Items {
			v, err := evalWithAggregates(ctx, it.Expr, gr.rows)
			if err != nil {
				return nil, nil, err
			}
			nr.Set("", cols[i], v)
		}
		out = append(out, nr)
	}
	return out, cols, nil
}

// evalWithAggregates evaluates an expression in grouped context: aggregate
// calls collapse the group's rows; everything else evaluates on the first
// row (the per-group representative, valid for GROUP BY expressions).
func evalWithAggregates(ctx *evalCtx, e Expr, rows []Row) (model.Value, error) {
	switch e := e.(type) {
	case *Call:
		if aggFuncs[e.Name] {
			return evalAggregate(ctx, e, rows)
		}
	case *Binary:
		if containsAggregate(e.L) || containsAggregate(e.R) {
			l, err := evalWithAggregates(ctx, e.L, rows)
			if err != nil {
				return model.Value{}, err
			}
			r, err := evalWithAggregates(ctx, e.R, rows)
			if err != nil {
				return model.Value{}, err
			}
			return ctx.Eval(&Binary{Op: e.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, newRow())
		}
	}
	if len(rows) == 0 {
		return model.Null(), nil
	}
	return ctx.Eval(e, rows[0])
}

func evalAggregate(ctx *evalCtx, call *Call, rows []Row) (model.Value, error) {
	if call.Star {
		if call.Name != "COUNT" {
			return model.Value{}, fmt.Errorf("query: %s(*) is not valid", call.Name)
		}
		return model.Int(int64(len(rows))), nil
	}
	if len(call.Args) != 1 {
		return model.Value{}, fmt.Errorf("query: %s takes exactly 1 argument", call.Name)
	}
	var vals []model.Value
	for _, r := range rows {
		v, err := ctx.Eval(call.Args[0], r)
		if err != nil {
			return model.Value{}, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch call.Name {
	case "COUNT":
		return model.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return model.Null(), nil
		}
		sum := 0.0
		allInt := true
		var isum int64
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return model.Value{}, fmt.Errorf("query: %s over non-numeric value %s", call.Name, v)
			}
			sum += f
			if i, ok := v.AsInt(); ok {
				isum += i
			} else {
				allInt = false
			}
		}
		if call.Name == "SUM" {
			if allInt {
				return model.Int(isum), nil
			}
			return model.Float(sum), nil
		}
		return model.Float(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return model.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if (call.Name == "MIN" && model.Less(v, best)) ||
				(call.Name == "MAX" && model.Less(best, v)) {
				best = v
			}
		}
		return best, nil
	}
	return model.Value{}, fmt.Errorf("query: unknown aggregate %s", call.Name)
}

// unionColumns derives display columns from raw rows: "binding.name" when
// several bindings exist, bare names otherwise, sorted.
func unionColumns(rows []Row) []string {
	keys := map[string]bool{}
	bindings := map[string]bool{}
	for _, r := range rows {
		for k := range r.vals {
			keys[k] = true
		}
		for b := range r.bindings {
			bindings[b] = true
		}
	}
	multi := len(bindings) > 1
	var cols []string
	for k := range keys {
		i := strings.Index(k, "\x00")
		b, name := k[:i], k[i+1:]
		if multi && b != "" {
			cols = append(cols, b+"."+name)
		} else {
			cols = append(cols, name)
		}
	}
	sort.Strings(cols)
	return cols
}
