package scdb

import (
	"fmt"
	"strings"
	"testing"
)

func TestCompletePublicAPI(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	ents := []Entity{}
	for i, row := range []struct{ name, class, target string }{
		{"Warfarin", "anticoagulant", "VKORC1"},
		{"Heparin", "anticoagulant", "ATIII"},
		{"Ibuprofen", "nsaid", "PTGS2"},
		{"Naproxen", "nsaid", "PTGS2"},
		{"Aspirin", "nsaid", "PTGS1"},
	} {
		ents = append(ents, Entity{
			Key:   row.name,
			Attrs: Record{"name": row.name, "class": row.class, "target": row.target},
		})
		_ = i
	}
	must(db.Ingest(Source{Name: "drugs", Entities: ents}))

	c, err := db.Complete("drugs", Record{"name": "Ibuprofen", "class": nil, "target": nil}, nil, 3)
	must(err)
	if c.Completed["class"] != "nsaid" {
		t.Errorf("class = %v", c.Completed["class"])
	}
	if c.Completed["target"] != "PTGS2" {
		t.Errorf("target = %v", c.Completed["target"])
	}
	if c.Confidence["class"] <= 0 || c.Support["class"] < 1 {
		t.Errorf("confidence/support = %v %v", c.Confidence, c.Support)
	}
	if _, err := db.Complete("missing", Record{}, nil, 3); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := db.Complete("drugs", Record{"bad": struct{}{}}, nil, 3); err == nil {
		t.Error("bad value type must fail")
	}
}

func TestResolveClaimPolicies(t *testing.T) {
	db := openSample(t)
	for _, c := range []Claim{
		{Source: "a", Entity: "Warfarin", Attr: "color", Value: "white", Confidence: 0.5},
		{Source: "b", Entity: "Warfarin", Attr: "color", Value: "white", Confidence: 0.5},
		{Source: "c", Entity: "Warfarin", Attr: "color", Value: "ivory", Confidence: 0.99},
	} {
		if err := db.AddClaim(c); err != nil {
			t.Fatal(err)
		}
	}
	v, support, err := db.ResolveClaim("Warfarin", "color", Vote)
	if err != nil {
		t.Fatal(err)
	}
	if v != "white" || support < 0.6 {
		t.Errorf("vote = %v (%v)", v, support)
	}
	v, _, err = db.ResolveClaim("Warfarin", "color", MostConfident)
	if err != nil {
		t.Fatal(err)
	}
	if v != "ivory" {
		t.Errorf("most confident = %v", v)
	}
	if _, _, err := db.ResolveClaim("Nothing", "color", Vote); err == nil {
		t.Error("unknown entity must fail")
	}
	if _, _, err := db.ResolveClaim("Warfarin", "absent", Vote); err == nil {
		t.Error("attribute without claims must fail")
	}
	if _, _, err := db.ResolveClaim("Warfarin", "color", ResolutionPolicy(99)); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestConflictsPublicAPI(t *testing.T) {
	db := openSample(t)
	for _, c := range ClinicalClaims() {
		if err := db.AddClaim(c); err != nil {
			t.Fatal(err)
		}
	}
	conflicts := db.Conflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	cf := conflicts[0]
	if cf.Entity != "Warfarin" || cf.Attr != "effective_dose_mg" {
		t.Errorf("conflict = %+v", cf)
	}
	if !cf.Reconcilable {
		t.Error("disjoint population contexts must be reconcilable")
	}
	if len(cf.Values) != 3 {
		t.Errorf("values = %v", cf.Values)
	}
	if srcs := cf.Values["5.1"]; len(srcs) != 1 || srcs[0] != "trials-us" {
		t.Errorf("5.1 sources = %v", srcs)
	}
}

func TestDiscoverPublic(t *testing.T) {
	db := openSample(t)
	found, err := db.Discover("Methotrexate", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("walk discovered nothing")
	}
	// Determinism per seed.
	again, _ := db.Discover("Methotrexate", 10, 42)
	if len(found) != len(again) {
		t.Error("walk not deterministic")
	}
	// Methotrexate's neighborhood includes its target or its disease.
	joined := strings.Join(found, "|")
	if !strings.Contains(joined, "DHFR") && !strings.Contains(joined, "Osteosarcoma") &&
		!strings.Contains(joined, "Rheumatoid Arthritis") {
		t.Errorf("unexpected discoveries: %v", found)
	}
	if _, err := db.Discover("Nobody", 5, 1); err == nil {
		t.Error("unknown entity must fail")
	}
}

func TestCrowdResolvePublic(t *testing.T) {
	db := openSample(t)
	for _, c := range []Claim{
		{Source: "a", Entity: "Warfarin", Attr: "class", Value: "anticoagulant"},
		{Source: "b", Entity: "Warfarin", Attr: "class", Value: "anticoagulant"},
		{Source: "c", Entity: "Warfarin", Attr: "class", Value: "rodenticide"},
	} {
		if err := db.AddClaim(c); err != nil {
			t.Fatal(err)
		}
	}
	ans, err := db.CrowdResolve("Warfarin", "class", 20, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != "anticoagulant" {
		t.Errorf("crowd picked %v", ans.Value)
	}
	if ans.Asks == 0 || ans.Spent > 20 || ans.Agreement <= 0 {
		t.Errorf("outcome = %+v", ans)
	}
	// Determinism per seed.
	again, _ := db.CrowdResolve("Warfarin", "class", 20, 0.9, 42)
	if again.Asks != ans.Asks || again.Value != ans.Value {
		t.Error("crowd resolution not seed-deterministic")
	}
	if _, err := db.CrowdResolve("Warfarin", "no-claims", 20, 0.9, 1); err == nil {
		t.Error("attribute without claims must fail")
	}
	if _, err := db.CrowdResolve("Nobody", "class", 20, 0.9, 1); err == nil {
		t.Error("unknown entity must fail")
	}
}

func TestSuggestAndEnrichLinks(t *testing.T) {
	// Many drugs treat arthritis; one drug with the same target does not
	// yet have the edge — prediction should propose it.
	db, err := Open(Options{Axioms: `
sub Drug Chemical
concept Disease
concept Gene
domain treats Drug
`})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	src := Source{Name: "kb"}
	src.Entities = append(src.Entities,
		Entity{Key: "arthritis", Types: []string{"Disease"}, Attrs: Record{"name": "Arthritis"}},
		Entity{Key: "ptgs2", Types: []string{"Gene"}, Attrs: Record{"name": "PTGS2-gene"}},
	)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("drug%d", i)
		src.Entities = append(src.Entities, Entity{Key: key, Types: []string{"Drug"}, Attrs: Record{"name": "compound " + key}})
		src.Links = append(src.Links, Link{FromKey: key, Predicate: "targets", ToKey: "ptgs2"})
		if i > 0 { // drug0 lacks the treats edge
			src.Links = append(src.Links, Link{FromKey: key, Predicate: "treats", ToKey: "arthritis"})
		}
	}
	if err := db.Ingest(src); err != nil {
		t.Fatal(err)
	}

	sugg, err := db.SuggestLinks("compound drug0", "treats", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	if sugg[0].To != "Arthritis" {
		t.Errorf("top suggestion = %+v", sugg[0])
	}
	if sugg[0].Confidence <= 0 || sugg[0].Confidence >= 1 {
		t.Errorf("confidence = %v", sugg[0].Confidence)
	}
	if _, err := db.SuggestLinks("nobody", "treats", 3); err == nil {
		t.Error("unknown entity must fail")
	}

	// Materialize predictions as enrichment; a semantic snapshot reader
	// must observe the churn.
	tx := db.Begin(Snapshot)
	tx.MarkSemanticRead()
	added, err := db.EnrichPredictedLinks("treats", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("no predicted edges added")
	}
	if _, err := tx.Commit(); err == nil {
		t.Error("predictive enrichment must trip the snapshot reader")
	}
	// The new edge is queryable.
	rows, err := db.Query(`SELECT name FROM Drug AS d WHERE REACHES(d._id, 'Arthritis', 1) ORDER BY name WITH SEMANTICS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 5 {
		t.Errorf("drugs treating arthritis after enrichment = %v", rows.Data)
	}
}

func TestPredictInPublicSCQL(t *testing.T) {
	db := openSample(t)
	// Ingest enough typed entities for the model, then an untyped one.
	for _, src := range LifeSciSample(5, 40, 30, 20) {
		if err := db.Ingest(src); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT PREDICT(d._id) AS guess FROM Drug AS d WHERE d._key = 'DB00682'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "Drug" {
		t.Errorf("PREDICT = %v", rows.Data)
	}
}

func TestSchemaAndTables(t *testing.T) {
	db := openSample(t)
	schema := db.Schema("drugbank")
	if len(schema) == 0 {
		t.Fatal("no schema observed")
	}
	found := false
	for _, a := range schema {
		if a.Name == "name" {
			found = true
			if a.Filled != 5 {
				t.Errorf("name filled = %d", a.Filled)
			}
			if a.Kinds["string"] != 5 {
				t.Errorf("name kinds = %v", a.Kinds)
			}
		}
	}
	if !found {
		t.Error("name attribute missing from schema")
	}
	tables := db.Tables()
	has := map[string]bool{}
	for _, t := range tables {
		has[t] = true
	}
	if !has["drugbank"] || !has["_catalog_tables"] {
		t.Errorf("tables = %v", tables)
	}
	if got := db.Schema("never-seen"); len(got) != 0 {
		t.Errorf("schema of unknown table = %v", got)
	}
}

func TestCheckpointAndVacuumPublic(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(Snapshot)
	id, _ := tx.Insert("t", Record{"v": 1})
	tx.Commit()
	for i := 2; i <= 5; i++ {
		tx := db.Begin(Snapshot)
		tx.Update("t", id, Record{"v": i})
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if removed := db.Vacuum(); removed < 3 {
		t.Errorf("vacuum removed %d versions", removed)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].(int64) != 5 {
		t.Errorf("recovered rows = %v", rows.Data)
	}
	// In-memory checkpoint/vacuum are harmless no-ops.
	mem, _ := Open(Options{})
	defer mem.Close()
	if err := mem.Checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint: %v", err)
	}
	if mem.Vacuum() != 0 {
		t.Error("fresh db vacuum must remove nothing")
	}
}
