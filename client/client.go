// Package client is the Go client for scdb-server. Dial negotiates the
// wire protocol at connect time: against a current server it speaks
// protocol v2 — compact binary frames, columnar row batches, and request
// pipelining (many calls in flight on one connection, responses matched
// by request id) — and against an older server it falls back to the v1
// length-prefixed JSON protocol, which is strictly request-response.
// DialProto pins the protocol explicitly.
//
// A Client is safe for concurrent use. On v2, concurrent calls are
// pipelined on the one connection; on v1 they are serialized (open
// several clients for parallel load).
//
// Results come back through the same lossless value encoding the server
// uses, so rows read over the network are identical — value for value —
// to rows read from an embedded scdb.DB.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scdb"
	"scdb/internal/er"
	"scdb/internal/server"
)

// ErrBusy mirrors the server's typed load-shedding error: the request was
// rejected by admission control. Retry with backoff.
var ErrBusy = server.ErrBusy

// ErrReadOnly mirrors the server's typed read-only error: the node is a
// replica and refuses writes. Route the write to the primary.
var ErrReadOnly = scdb.ErrReadOnly

// ServerError is a non-OK response from the server. errors.Is(err,
// ErrBusy) matches responses with the "busy" code.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("scdb-server: %s (%s)", e.Msg, e.Code) }

// Is maps wire codes back to the typed errors a caller checks for.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrBusy:
		return e.Code == server.CodeBusy
	case context.DeadlineExceeded:
		return e.Code == server.CodeDeadline
	case context.Canceled:
		return e.Code == server.CodeCanceled
	case ErrReadOnly:
		return e.Code == server.CodeReadOnly
	}
	return false
}

// Client is one connection to an scdb-server.
type Client struct {
	mu     sync.Mutex // v1: serializes request/response exchanges
	nc     net.Conn
	br     *bufio.Reader
	broken atomic.Bool

	proto int      // negotiated protocol version (1 or 2)
	v2    *v2state // multiplexing state; nil on v1

	// lastCSN is the highest commit stamp any response on this connection
	// has carried — the session's read-your-writes high-water mark. Write
	// responses carry the commit CSN; pings carry the node's current CSN.
	lastCSN atomic.Uint64
}

// noteCSN advances the session high-water mark; stamps never move it back.
func (c *Client) noteCSN(csn uint64) {
	for {
		cur := c.lastCSN.Load()
		if csn <= cur || c.lastCSN.CompareAndSwap(cur, csn) {
			return
		}
	}
}

// LastCSN reports the highest commit stamp observed on this connection —
// what a router must see applied on a replica before reading from it.
func (c *Client) LastCSN() uint64 { return c.lastCSN.Load() }

func newClientV1(nc net.Conn) *Client {
	return &Client{nc: nc, br: bufio.NewReader(nc), proto: server.ProtoV1}
}

// Dial connects to an scdb-server at addr ("host:port"), negotiating the
// newest protocol both sides speak (see DialProto to pin one).
func Dial(addr string) (*Client, error) {
	return DialProto(addr, "auto")
}

// Close closes the connection immediately, failing any in-flight call —
// it deliberately does not wait for one to finish.
func (c *Client) Close() error {
	c.broken.Store(true)
	return c.nc.Close()
}

// deadlineGrace is how long past a context deadline the client keeps
// listening: the server enforces the same deadline in-band, and its typed
// response keeps the connection reusable. Only when the server overshoots
// the grace does the client abort and poison the connection (the protocol
// has no way to resynchronize past an abandoned response).
const deadlineGrace = 2 * time.Second

// roundTrip sends one request and reads its response. A context deadline
// travels to the server as the request timeout; explicit cancellation
// aborts the wait at once.
func (c *Client) roundTrip(ctx context.Context, req server.Request) (*server.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d, ok := ctx.Deadline(); ok && req.TimeoutMS == 0 {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken.Load() {
		return nil, errors.New("scdb client: connection is closed")
	}
	done := make(chan struct{})
	watchDone := make(chan struct{})
	defer func() {
		close(done)
		<-watchDone
	}()
	go func() {
		defer close(watchDone)
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			select {
			case <-done:
				return // the server's in-band answer made it in time
			case <-time.After(deadlineGrace):
			}
		}
		c.broken.Store(true)
		c.nc.SetDeadline(time.Unix(1, 0))
	}()
	if err := server.WriteFrame(c.nc, req); err != nil {
		c.broken.Store(true)
		return nil, err
	}
	var resp server.Response
	if err := server.ReadFrame(c.br, server.DefaultMaxFrame, &resp); err != nil {
		c.broken.Store(true)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if !resp.OK {
		return nil, &ServerError{Code: resp.Code, Msg: resp.Err}
	}
	return &resp, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.PingCSN()
	return err
}

// PingCSN round-trips an empty request and returns the node's current
// commit stamp: on a primary the latest allocated CSN, on a replica the
// applied watermark. A router compares it against a session's LastCSN to
// decide whether the replica is fresh enough to serve that session's reads.
func (c *Client) PingCSN() (uint64, error) {
	if c.proto == server.ProtoV2 {
		return c.pingV2()
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpPing})
	if err != nil {
		return 0, err
	}
	return resp.CSN, nil
}

// Query executes one SCQL statement under the server's default deadline.
func (c *Client) Query(q string) (*scdb.Rows, error) {
	return c.QueryCtx(nil, q)
}

// QueryCtx executes one SCQL statement; a context deadline becomes the
// request's end-to-end deadline on the server.
func (c *Client) QueryCtx(ctx context.Context, q string) (*scdb.Rows, error) {
	rows, _, err := c.QueryInfoCtx(ctx, q)
	return rows, err
}

// QueryInfo executes one SCQL statement and reports how it was answered.
func (c *Client) QueryInfo(q string) (*scdb.Rows, *scdb.QueryInfo, error) {
	return c.QueryInfoCtx(nil, q)
}

// QueryInfoCtx is QueryInfo with a deadline.
func (c *Client) QueryInfoCtx(ctx context.Context, q string) (*scdb.Rows, *scdb.QueryInfo, error) {
	if c.proto == server.ProtoV2 {
		return c.queryV2(ctx, server.V2OpQuery, q)
	}
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpQuery, Query: q})
	if err != nil {
		return nil, nil, err
	}
	rows, err := server.DecodeRows(resp.Columns, resp.Rows)
	if err != nil {
		return nil, nil, err
	}
	return rows, queryInfo(resp.Info), nil
}

// Explain returns the optimized plan without executing.
func (c *Client) Explain(q string) (*scdb.QueryInfo, error) {
	if c.proto == server.ProtoV2 {
		_, info, err := c.queryV2(nil, server.V2OpExplain, q)
		return info, err
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpExplain, Query: q})
	if err != nil {
		return nil, err
	}
	return queryInfo(resp.Info), nil
}

// Ingest ships one source delivery through the server's curation pipeline.
func (c *Client) Ingest(src scdb.Source) error {
	if c.proto == server.ProtoV2 {
		_, err := c.ingestV2(nil, src, false)
		return err
	}
	ws, err := server.EncodeSource(src)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpIngest, Source: ws})
	if err != nil {
		return err
	}
	c.noteCSN(resp.CSN)
	return nil
}

// IngestTraced is Ingest with tracing on: the response carries the
// curation pipeline's span tree (decode fan-out, batch install with WAL
// fsync wait, relation, integration, inference) as indented JSON.
func (c *Client) IngestTraced(src scdb.Source) (string, error) {
	if c.proto == server.ProtoV2 {
		return c.ingestV2(nil, src, true)
	}
	ws, err := server.EncodeSource(src)
	if err != nil {
		return "", err
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpIngest, Source: ws, Trace: true})
	if err != nil {
		return "", err
	}
	c.noteCSN(resp.CSN)
	return resp.Trace, nil
}

// IngestSummary reports what a streamed IngestBatch installed.
type IngestSummary = server.IngestSummary

// DefaultIngestBatch is the chunk size IngestBatch uses when the caller
// passes batchSize <= 0.
const DefaultIngestBatch = 1024

// IngestBatch ships one source delivery as a chunked ingest_batch stream:
// entities go out in batchSize chunks that the server installs through its
// batch write path, and the links and texts ride in the final chunk so
// every cross-reference already has its entity installed. The whole stream
// holds one admission slot on the server and one request slot on this
// client. A context deadline bounds the stream end to end.
func (c *Client) IngestBatch(ctx context.Context, src scdb.Source, batchSize int) (*IngestSummary, error) {
	if batchSize <= 0 {
		batchSize = DefaultIngestBatch
	}
	if c.proto == server.ProtoV2 {
		return c.ingestBatchV2(ctx, src, batchSize)
	}
	ws, err := server.EncodeSource(src)
	if err != nil {
		return nil, err
	}
	req := server.Request{Op: server.OpIngestBatch, Source: &server.WireSource{Name: ws.Name}}
	if ctx == nil {
		ctx = context.Background()
	}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken.Load() {
		return nil, errors.New("scdb client: connection is closed")
	}
	done := make(chan struct{})
	watchDone := make(chan struct{})
	defer func() {
		close(done)
		<-watchDone
	}()
	go func() {
		defer close(watchDone)
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			select {
			case <-done:
				return
			case <-time.After(deadlineGrace):
			}
		}
		c.broken.Store(true)
		c.nc.SetDeadline(time.Unix(1, 0))
	}()
	fail := func(err error) (*IngestSummary, error) {
		c.broken.Store(true)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	bw := bufio.NewWriter(c.nc)
	if err := server.WriteFrame(bw, req); err != nil {
		return fail(err)
	}
	for lo := 0; lo < len(ws.Entities); lo += batchSize {
		hi := min(lo+batchSize, len(ws.Entities))
		if err := server.WriteFrame(bw, server.IngestChunk{Entities: ws.Entities[lo:hi]}); err != nil {
			return fail(err)
		}
	}
	last := server.IngestChunk{Links: ws.Links, Texts: ws.Texts, Done: true}
	if err := server.WriteFrame(bw, last); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	var resp server.Response
	if err := server.ReadFrame(c.br, server.DefaultMaxFrame, &resp); err != nil {
		return fail(err)
	}
	if !resp.OK {
		return nil, &ServerError{Code: resp.Code, Msg: resp.Err}
	}
	if resp.Ingest == nil {
		return nil, errors.New("scdb client: ingest_batch response without summary")
	}
	c.noteCSN(resp.CSN)
	return resp.Ingest, nil
}

// ERDigests pulls the node's incremental entity-resolution evidence past
// the two resolver watermarks: entity digests indexed after entsSince and
// accepted duplicate pairs recorded after matchesSince. The shard router
// calls this after routed ingests and feeds the batches to an er.Exchange
// so entities living on different shards still merge; application code
// rarely needs it.
func (c *Client) ERDigests(entsSince, matchesSince int) (er.DigestBatch, error) {
	if c.proto == server.ProtoV2 {
		return c.erDigestsV2(entsSince, matchesSince)
	}
	resp, err := c.roundTrip(nil, server.Request{
		Op:           server.OpERDigests,
		SinceEnts:    entsSince,
		SinceMatches: matchesSince,
	})
	if err != nil {
		return er.DigestBatch{}, err
	}
	if resp.Digests == nil {
		return er.DigestBatch{}, errors.New("scdb client: er_digests response without body")
	}
	return *resp.Digests, nil
}

// Stats fetches the engine snapshot plus the server's live metrics.
func (c *Client) Stats() (server.StatsReply, error) {
	if c.proto == server.ProtoV2 {
		return c.statsV2()
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpStats})
	if err != nil {
		return server.StatsReply{}, err
	}
	if resp.Stats == nil {
		return server.StatsReply{}, errors.New("scdb client: stats response without body")
	}
	return *resp.Stats, nil
}

// Metrics fetches the server's metrics registry as sorted "name value"
// text — the same body the debug listener serves at /metrics.
func (c *Client) Metrics() (string, error) {
	if c.proto == server.ProtoV2 {
		blob, err := c.blobV2(server.V2OpMetrics)
		return string(blob), err
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpMetrics})
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}

// SlowLog fetches the server's slow-op ring, oldest first, along with the
// configured threshold and the lifetime count of slow operations.
func (c *Client) SlowLog() (server.SlowLogReply, error) {
	if c.proto == server.ProtoV2 {
		return c.slowLogV2()
	}
	resp, err := c.roundTrip(nil, server.Request{Op: server.OpSlowLog})
	if err != nil {
		return server.SlowLogReply{}, err
	}
	if resp.Slow == nil {
		return server.SlowLogReply{}, errors.New("scdb client: slowlog response without body")
	}
	return *resp.Slow, nil
}

func queryInfo(w *server.WireInfo) *scdb.QueryInfo {
	if w == nil {
		return &scdb.QueryInfo{}
	}
	return &scdb.QueryInfo{
		Plan:          w.Plan,
		Rules:         w.Rules,
		CacheHit:      w.CacheHit,
		PlanCached:    w.PlanCached,
		EstimatedCost: w.EstimatedCost,
		OperatorStats: w.OperatorStats,
	}
}
