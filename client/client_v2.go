package client

// Protocol v2: binary frames, columnar row batches, and request
// pipelining. One reader goroutine decodes every inbound frame and routes
// it to the waiting call by request id, so many calls can be in flight on
// one connection at once and responses may complete out of order. The v1
// JSON path (strictly request-response) is in client.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scdb"
	"scdb/internal/er"
	"scdb/internal/server"
)

// handshakeTimeout bounds the v2 hello exchange: a v1-only server answers
// the hello with a JSON error frame (it parses as an oversized v1 frame),
// so the exchange settles quickly either way; the timeout covers a peer
// that answers nothing at all.
const handshakeTimeout = 5 * time.Second

// v2call is one in-flight request. The reader goroutine owns rows/res/
// code/msg/err until it closes ready; the caller reads them only after.
type v2call struct {
	rows      [][]any
	res       *server.V2Result
	code, msg string
	err       error
	ready     chan struct{}
}

// v2state is the multiplexing machinery of a protocol-v2 client.
type v2state struct {
	wmu sync.Mutex // serializes frame writes

	pmu    sync.Mutex
	nextID uint32
	calls  map[uint32]*v2call
}

// DialProto connects with an explicit protocol choice:
//
//   - "auto" (or ""): propose v2; fall back to v1 if the server doesn't
//     speak it. This is what Dial does.
//   - "v2" or "2": require v2; fail against a v1-only server.
//   - "v1" or "1": speak v1 JSON unconditionally (what old clients do).
func DialProto(addr, proto string) (*Client, error) {
	switch proto {
	case "v1", "1":
		return dialV1(addr)
	case "v2", "2":
		return dialV2(addr)
	case "auto", "":
		c, err := dialV2(addr)
		if err == nil {
			return c, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && !ne.Timeout() {
			return nil, err // dial-level failure; v1 would fail the same way
		}
		return dialV1(addr)
	}
	return nil, fmt.Errorf("scdb client: unknown protocol %q (want auto, v1, or v2)", proto)
}

func dialV1(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClientV1(nc), nil
}

func dialV2(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := server.WriteClientHello(nc); err != nil {
		nc.Close()
		return nil, err
	}
	if _, err := server.ReadServerHello(nc); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	c := newClientV1(nc)
	c.proto = server.ProtoV2
	c.v2 = &v2state{calls: map[uint32]*v2call{}}
	go c.readLoopV2()
	return c, nil
}

// Proto reports the negotiated protocol version: 1 or 2.
func (c *Client) Proto() int { return c.proto }

// readLoopV2 is the connection's single frame reader: it decodes every
// inbound frame and routes it by request id. Frames for forgotten ids
// (calls abandoned past their grace) are discarded, which is what keeps
// an abandoned call from poisoning the connection.
func (c *Client) readLoopV2() {
	for {
		f, err := server.ReadV2Frame(c.br, server.DefaultMaxFrame)
		if err != nil {
			c.failAllV2(err)
			return
		}
		c.v2.pmu.Lock()
		ca := c.v2.calls[f.ID]
		c.v2.pmu.Unlock()
		if ca == nil {
			continue
		}
		switch f.Op {
		case server.V2OpRowBatch:
			rows, err := server.DecodeV2RowBatch(f.Payload, ca.rows)
			if err != nil {
				ca.err = err
				c.finishV2(f.ID, ca)
				continue
			}
			ca.rows = rows
		case server.V2OpResult:
			res, err := server.DecodeV2Result(f.Payload)
			if err != nil {
				ca.err = err
			} else {
				ca.res = res
			}
			c.finishV2(f.ID, ca)
		case server.V2OpError:
			code, msg, err := server.DecodeV2Error(f.Payload)
			if err != nil {
				ca.err = err
			} else {
				ca.code, ca.msg = code, msg
			}
			c.finishV2(f.ID, ca)
		}
	}
}

func (c *Client) finishV2(id uint32, ca *v2call) {
	c.v2.pmu.Lock()
	if c.v2.calls[id] == ca {
		delete(c.v2.calls, id)
	}
	c.v2.pmu.Unlock()
	close(ca.ready)
}

// failAllV2 breaks the connection: every pending call fails with err.
func (c *Client) failAllV2(err error) {
	c.broken.Store(true)
	c.nc.Close()
	c.v2.pmu.Lock()
	calls := c.v2.calls
	c.v2.calls = map[uint32]*v2call{}
	c.v2.pmu.Unlock()
	for _, ca := range calls {
		ca.err = err
		close(ca.ready)
	}
}

// newCallV2 allocates a request id and registers the call for routing.
func (c *Client) newCallV2() (uint32, *v2call) {
	ca := &v2call{ready: make(chan struct{})}
	c.v2.pmu.Lock()
	c.v2.nextID++
	id := c.v2.nextID
	c.v2.calls[id] = ca
	c.v2.pmu.Unlock()
	return id, ca
}

func (c *Client) forgetV2(id uint32) {
	c.v2.pmu.Lock()
	delete(c.v2.calls, id)
	c.v2.pmu.Unlock()
}

// writeFramesV2 writes complete frames under the write mutex. Frames from
// concurrent calls may interleave on the wire — ids route them — but a
// single frame is never torn. A write error poisons the connection (a
// half-written frame cannot be resynchronized).
func (c *Client) writeFramesV2(frames ...[]byte) error {
	c.v2.wmu.Lock()
	defer c.v2.wmu.Unlock()
	if c.broken.Load() {
		return errors.New("scdb client: connection is closed")
	}
	for _, fr := range frames {
		if _, err := c.nc.Write(fr); err != nil {
			c.broken.Store(true)
			c.nc.Close()
			return err
		}
	}
	return nil
}

func (c *Client) sendCancelV2(id uint32) {
	e := server.GetV2Enc()
	c.writeFramesV2(server.EncodeV2Simple(e, id, server.V2OpCancel))
	e.Release()
}

// waitV2 waits for the call's final frame. A context deadline is enforced
// in-band by the server (it received the same timeout), so the client
// waits a grace past it for the typed response. Explicit cancellation
// additionally sends a cancel frame so the server stops working on the
// request; the canceled request still gets its error response. If the
// server overshoots the grace, the call is forgotten — the reader drops
// its late frames — and the connection stays usable, unlike v1.
func (c *Client) waitV2(ctx context.Context, id uint32, ca *v2call) (*server.V2Result, error) {
	select {
	case <-ca.ready:
	case <-ctx.Done():
		if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.sendCancelV2(id)
		}
		select {
		case <-ca.ready:
		case <-time.After(deadlineGrace):
			c.forgetV2(id)
			return nil, ctx.Err()
		}
	}
	if ca.err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, ca.err
	}
	if ca.code != "" {
		return nil, &ServerError{Code: ca.code, Msg: ca.msg}
	}
	return ca.res, nil
}

// ctxAndTimeout normalizes a nil context and derives the request timeout
// the server should enforce in-band.
func ctxAndTimeout(ctx context.Context) (context.Context, int64) {
	if ctx == nil {
		ctx = context.Background()
	}
	var ms int64
	if d, ok := ctx.Deadline(); ok {
		ms = time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
	}
	return ctx, ms
}

func (c *Client) pingV2() (uint64, error) {
	id, ca := c.newCallV2()
	e := server.GetV2Enc()
	err := c.writeFramesV2(server.EncodeV2Simple(e, id, server.V2OpPing))
	e.Release()
	if err != nil {
		c.forgetV2(id)
		return 0, err
	}
	res, err := c.waitV2(context.Background(), id, ca)
	if err != nil {
		return 0, err
	}
	return res.CSN, nil
}

func (c *Client) queryV2(ctx context.Context, op byte, q string) (*scdb.Rows, *scdb.QueryInfo, error) {
	ctx, ms := ctxAndTimeout(ctx)
	id, ca := c.newCallV2()
	e := server.GetV2Enc()
	err := c.writeFramesV2(server.EncodeV2Query(e, id, op, q, ms))
	e.Release()
	if err != nil {
		c.forgetV2(id)
		return nil, nil, err
	}
	res, err := c.waitV2(ctx, id, ca)
	if err != nil {
		return nil, nil, err
	}
	info := res.Info
	if info == nil {
		info = &scdb.QueryInfo{}
	}
	if op == server.V2OpExplain {
		return nil, info, nil
	}
	return &scdb.Rows{Columns: res.Columns, Data: ca.rows}, info, nil
}

func (c *Client) ingestV2(ctx context.Context, src scdb.Source, trace bool) (string, error) {
	ctx, ms := ctxAndTimeout(ctx)
	id, ca := c.newCallV2()
	e := server.GetV2Enc()
	frame, err := server.EncodeV2Ingest(e, id, src, ms, trace)
	if err != nil {
		e.Release()
		c.forgetV2(id)
		return "", err
	}
	err = c.writeFramesV2(frame)
	e.Release()
	if err != nil {
		c.forgetV2(id)
		return "", err
	}
	res, err := c.waitV2(ctx, id, ca)
	if err != nil {
		return "", err
	}
	c.noteCSN(res.CSN)
	return res.Trace, nil
}

func (c *Client) ingestBatchV2(ctx context.Context, src scdb.Source, batchSize int) (*IngestSummary, error) {
	ctx, ms := ctxAndTimeout(ctx)
	id, ca := c.newCallV2()
	fail := func(err error) (*IngestSummary, error) {
		c.forgetV2(id)
		return nil, err
	}
	e := server.GetV2Enc()
	err := c.writeFramesV2(server.EncodeV2IngestBatchHeader(e, id, src.Name, ms, false))
	e.Release()
	if err != nil {
		return fail(err)
	}
	for lo := 0; lo < len(src.Entities); lo += batchSize {
		hi := min(lo+batchSize, len(src.Entities))
		e := server.GetV2Enc()
		frame, err := server.EncodeV2IngestChunk(e, id, server.V2Chunk{Entities: src.Entities[lo:hi]})
		if err == nil {
			err = c.writeFramesV2(frame)
		}
		e.Release()
		if err != nil {
			return fail(err)
		}
	}
	e = server.GetV2Enc()
	frame, err := server.EncodeV2IngestChunk(e, id, server.V2Chunk{Links: src.Links, Texts: src.Texts, Done: true})
	if err == nil {
		err = c.writeFramesV2(frame)
	}
	e.Release()
	if err != nil {
		return fail(err)
	}
	res, err := c.waitV2(ctx, id, ca)
	if err != nil {
		return nil, err
	}
	if res.Ingest == nil {
		return nil, errors.New("scdb client: ingest_batch response without summary")
	}
	c.noteCSN(res.CSN)
	return res.Ingest, nil
}

// blobV2 runs one control-plane op (stats, metrics, slowlog) and returns
// its blob body.
func (c *Client) blobV2(op byte) ([]byte, error) {
	id, ca := c.newCallV2()
	e := server.GetV2Enc()
	err := c.writeFramesV2(server.EncodeV2Simple(e, id, op))
	e.Release()
	if err != nil {
		c.forgetV2(id)
		return nil, err
	}
	res, err := c.waitV2(context.Background(), id, ca)
	if err != nil {
		return nil, err
	}
	return res.Blob, nil
}

func (c *Client) statsV2() (server.StatsReply, error) {
	blob, err := c.blobV2(server.V2OpStats)
	if err != nil {
		return server.StatsReply{}, err
	}
	var st server.StatsReply
	if err := json.Unmarshal(blob, &st); err != nil {
		return server.StatsReply{}, err
	}
	return st, nil
}

func (c *Client) erDigestsV2(entsSince, matchesSince int) (er.DigestBatch, error) {
	id, ca := c.newCallV2()
	e := server.GetV2Enc()
	err := c.writeFramesV2(server.EncodeV2ERDigests(e, id, entsSince, matchesSince))
	e.Release()
	if err != nil {
		c.forgetV2(id)
		return er.DigestBatch{}, err
	}
	res, err := c.waitV2(context.Background(), id, ca)
	if err != nil {
		return er.DigestBatch{}, err
	}
	var b er.DigestBatch
	if err := json.Unmarshal(res.Blob, &b); err != nil {
		return er.DigestBatch{}, err
	}
	return b, nil
}

func (c *Client) slowLogV2() (server.SlowLogReply, error) {
	blob, err := c.blobV2(server.V2OpSlowLog)
	if err != nil {
		return server.SlowLogReply{}, err
	}
	var sl server.SlowLogReply
	if err := json.Unmarshal(blob, &sl); err != nil {
		return server.SlowLogReply{}, err
	}
	return sl, nil
}
