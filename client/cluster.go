package client

// Cluster is a read-your-writes router over one primary and any number of
// read replicas. Writes always go to the primary; its responses carry the
// commit CSN, which becomes the session's high-water mark. Reads go to a
// replica only once that replica's applied CSN covers the mark — verified
// with a PingCSN and cached (applied CSNs only grow) — so a session never
// reads a replica state older than its own writes. A replica that is still
// catching up is polled briefly; if none freshens within FreshnessWait the
// read falls back to the primary, trading locality for latency rather
// than blocking.
//
// Only transport failures fail a read over to another node: a replica
// whose connection breaks is marked down and redialed after RetryDown.
// Server-side errors (bad SCQL, deadline, busy) are deterministic answers
// and are returned to the caller unchanged.

import (
	"context"
	"errors"
	"sync"
	"time"

	"scdb"
	"scdb/internal/er"
	"scdb/internal/server"
)

// replicaNode is one follower endpoint and its cached freshness.
type replicaNode struct {
	addr string

	mu        sync.Mutex
	c         *Client   // nil when not connected
	applied   uint64    // last observed applied CSN; monotone
	downUntil time.Time // zero when healthy
}

// Cluster routes one session's calls across a primary and its replicas.
// Safe for concurrent use; concurrent reads spread round-robin across
// fresh replicas.
type Cluster struct {
	// FreshnessWait bounds how long a read waits for some replica to
	// apply the session's last write before falling back to the primary.
	FreshnessWait time.Duration
	// RetryDown is how long a failed replica stays out of rotation.
	RetryDown time.Duration

	primary  *Client
	replicas []*replicaNode

	mu   sync.Mutex
	next int // round-robin cursor
}

// DialCluster connects to the primary and registers the replica addresses.
// Replica connections are dialed lazily on first read, so a replica that is
// down at dial time costs nothing until it is needed.
func DialCluster(primary string, replicas ...string) (*Cluster, error) {
	pc, err := Dial(primary)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		FreshnessWait: 2 * time.Second,
		RetryDown:     time.Second,
		primary:       pc,
	}
	for _, addr := range replicas {
		cl.replicas = append(cl.replicas, &replicaNode{addr: addr})
	}
	return cl, nil
}

// Primary returns the primary connection for direct use (stats, ingest
// streams, anything that must not be routed).
func (cl *Cluster) Primary() *Client { return cl.primary }

// LastCSN reports the session's read-your-writes high-water mark: the
// commit stamp of its latest write through this cluster.
func (cl *Cluster) LastCSN() uint64 { return cl.primary.LastCSN() }

// Close closes the primary and every connected replica.
func (cl *Cluster) Close() error {
	err := cl.primary.Close()
	for _, r := range cl.replicas {
		r.mu.Lock()
		if r.c != nil {
			r.c.Close()
			r.c = nil
		}
		r.mu.Unlock()
	}
	return err
}

// Ingest ships one source delivery to the primary.
func (cl *Cluster) Ingest(src scdb.Source) error { return cl.primary.Ingest(src) }

// IngestBatch streams one source delivery to the primary.
func (cl *Cluster) IngestBatch(ctx context.Context, src scdb.Source, batchSize int) (*IngestSummary, error) {
	return cl.primary.IngestBatch(ctx, src, batchSize)
}

// Query executes one read, preferring a replica that has applied this
// session's writes.
func (cl *Cluster) Query(q string) (*scdb.Rows, error) { return cl.QueryCtx(nil, q) }

// QueryCtx is Query with a deadline.
func (cl *Cluster) QueryCtx(ctx context.Context, q string) (*scdb.Rows, error) {
	rows, _, err := cl.QueryInfoCtx(ctx, q)
	return rows, err
}

// QueryInfoCtx is QueryCtx reporting how the statement was answered. The
// shard router reads through this method, so a replica-fronted shard keeps
// its read-your-writes guarantee under scatter-gather fan-out.
func (cl *Cluster) QueryInfoCtx(ctx context.Context, q string) (*scdb.Rows, *scdb.QueryInfo, error) {
	hw := cl.primary.LastCSN()
	deadline := time.Now().Add(cl.FreshnessWait)
	for {
		if ctx != nil && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		r, alive := cl.pickFresh(hw)
		if r == nil {
			// Lagging replicas are worth a short wait; dead ones are not.
			if alive && time.Now().Before(deadline) {
				if ctx != nil {
					select {
					case <-ctx.Done():
						return nil, nil, ctx.Err()
					case <-time.After(5 * time.Millisecond):
					}
				} else {
					time.Sleep(5 * time.Millisecond)
				}
				continue
			}
			// No replica covers the mark in time: the primary always does.
			return cl.primary.QueryInfoCtx(ctx, q)
		}
		rows, info, err := cl.queryReplica(r, ctx, q)
		if err == nil {
			return rows, info, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return nil, nil, err // deterministic server answer; don't fail over
		}
		cl.markDown(r)
	}
}

// Explain returns the primary's optimized plan without executing.
func (cl *Cluster) Explain(q string) (*scdb.QueryInfo, error) { return cl.primary.Explain(q) }

// PingCSN reports the primary's current commit stamp.
func (cl *Cluster) PingCSN() (uint64, error) { return cl.primary.PingCSN() }

// Stats fetches the primary's stats reply.
func (cl *Cluster) Stats() (server.StatsReply, error) { return cl.primary.Stats() }

// ERDigests pulls the primary's incremental ER evidence (see
// Client.ERDigests); replicas never resolve, so the primary is the one
// authoritative source.
func (cl *Cluster) ERDigests(entsSince, matchesSince int) (er.DigestBatch, error) {
	return cl.primary.ERDigests(entsSince, matchesSince)
}

// pickFresh returns a connected replica whose applied CSN covers hw, or
// nil when none does right now; alive reports whether any replica is at
// least reachable (merely lagging), so the caller knows whether waiting
// can help. The round-robin cursor spreads load across equally fresh
// replicas.
func (cl *Cluster) pickFresh(hw uint64) (r *replicaNode, alive bool) {
	n := len(cl.replicas)
	if n == 0 {
		return nil, false
	}
	cl.mu.Lock()
	start := cl.next
	cl.next = (cl.next + 1) % n
	cl.mu.Unlock()
	for i := 0; i < n; i++ {
		cand := cl.replicas[(start+i)%n]
		fresh, up := cl.freshen(cand, hw)
		if fresh {
			return cand, true
		}
		alive = alive || up
	}
	return nil, alive
}

// freshen reports whether r has applied at least hw (fresh) and whether it
// is reachable at all (alive), dialing and pinging as needed. The cached
// applied CSN short-circuits the ping: applied stamps only grow, so a
// cache that covers hw still does. Network calls happen outside r.mu —
// the lock only snapshots and publishes state — so a slow or unresponsive
// replica never serializes the concurrent readers probing it.
func (cl *Cluster) freshen(r *replicaNode, hw uint64) (fresh, alive bool) {
	r.mu.Lock()
	if !r.downUntil.IsZero() {
		if time.Now().Before(r.downUntil) {
			r.mu.Unlock()
			return false, false
		}
		r.downUntil = time.Time{}
	}
	c := r.c
	applied := r.applied
	r.mu.Unlock()

	if c == nil {
		nc, err := Dial(r.addr)
		r.mu.Lock()
		if err != nil {
			// Another prober may have connected meanwhile; only back off
			// while the node is still unconnected.
			if r.c == nil {
				r.downUntil = time.Now().Add(cl.RetryDown)
			}
			r.mu.Unlock()
			return false, false
		}
		if r.c == nil {
			r.c = nc
		} else {
			nc.Close() // lost the dial race; keep the established connection
		}
		c = r.c
		applied = r.applied
		r.mu.Unlock()
	}
	if applied >= hw {
		return true, true
	}
	csn, err := c.PingCSN()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		// Tear down only if our connection is still the node's current one
		// (a concurrent prober may already have replaced it).
		if r.c == c {
			r.c.Close()
			r.c = nil
			r.downUntil = time.Now().Add(cl.RetryDown)
		}
		return false, false
	}
	if csn > r.applied {
		r.applied = csn
	}
	return r.applied >= hw, true
}

func (cl *Cluster) queryReplica(r *replicaNode, ctx context.Context, q string) (*scdb.Rows, *scdb.QueryInfo, error) {
	r.mu.Lock()
	c := r.c
	r.mu.Unlock()
	if c == nil {
		return nil, nil, errors.New("scdb client: replica not connected")
	}
	return c.QueryInfoCtx(ctx, q)
}

func (cl *Cluster) markDown(r *replicaNode) {
	r.mu.Lock()
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
	r.downUntil = time.Now().Add(cl.RetryDown)
	r.mu.Unlock()
}
