package scdb

import (
	"fmt"
	"time"

	"scdb/internal/fusion"
	"scdb/internal/model"
	"scdb/internal/refine"
)

// This file carries the remaining public surface: query-by-example
// completion (FS.7), claim resolution policies (FS.9/FS.10), schema
// introspection (meta-data as data), and durability maintenance.

// Completion is the result of completing one example record.
type Completion struct {
	// Completed is the example with filled attributes (attributes without
	// evidence stay nil).
	Completed Record
	// Confidence is the vote share behind each filled attribute.
	Confidence map[string]float64
	// Support counts the neighbour rows that voted for each attribute.
	Support map[string]int
}

// Complete fills the example's nil attributes by query-by-example over the
// named table (FS.7): the k most similar rows vote on each missing value.
// If want is non-empty only those attributes are completed.
func (db *DB) Complete(table string, example Record, want []string, k int) (Completion, error) {
	rec, err := toRecord(example)
	if err != nil {
		return Completion{}, err
	}
	rows, ok := db.inner.TableRecords(table)
	if !ok {
		return Completion{}, fmt.Errorf("scdb: unknown table %q", table)
	}
	c := refine.CompleteByExample(rows, rec, want, k)
	out := Completion{Completed: Record{}, Confidence: map[string]float64{}, Support: map[string]int{}}
	for key, v := range c.Completed {
		out.Completed[key] = fromValue(v)
	}
	for key, f := range c.Confidence {
		out.Confidence[key] = float64(f)
	}
	for key, n := range c.Support {
		out.Support[key] = n
	}
	return out, nil
}

// ResolutionPolicy selects how ResolveClaim reconciles conflicting claims.
type ResolutionPolicy int

const (
	// Vote picks the most frequently claimed value.
	Vote ResolutionPolicy = iota
	// RichnessWeighted weights claims by measured source richness (run
	// RefreshRichness first).
	RichnessWeighted
	// MostConfident picks the single highest-confidence claim.
	MostConfident
)

// ResolveClaim reconciles the recorded claims about (entity, attr) into
// one value plus the share of weight behind it.
func (db *DB) ResolveClaim(entity, attr string, policy ResolutionPolicy) (value any, support float64, err error) {
	e, ok := db.inner.LookupEntity("", entity)
	if !ok {
		return nil, 0, fmt.Errorf("scdb: unknown entity %q", entity)
	}
	var p fusion.Policy
	switch policy {
	case Vote:
		p = fusion.PolicyVote
	case RichnessWeighted:
		p = fusion.PolicyRichnessWeighted
	case MostConfident:
		p = fusion.PolicyMostConfident
	default:
		return nil, 0, fmt.Errorf("scdb: unknown resolution policy %d", policy)
	}
	v, deg, err := db.inner.Worlds().Resolve(e.ID, attr, p)
	if err != nil {
		return nil, 0, err
	}
	return fromValue(v), float64(deg), nil
}

// Conflict describes one attribute with disagreeing claims.
type Conflict struct {
	Entity string
	Attr   string
	// Values lists the distinct claimed values with their sources.
	Values map[string][]string
	// Reconcilable is true when the disagreeing claims live in pairwise
	// disjoint context classes — parallel worlds rather than errors.
	Reconcilable bool
}

// Conflicts lists every attribute with disagreeing claims.
func (db *DB) Conflicts() []Conflict {
	var out []Conflict
	for _, cf := range db.inner.Worlds().Conflicts() {
		c := Conflict{
			Entity:       db.entityLabel(cf.Entity),
			Attr:         cf.Attr,
			Values:       map[string][]string{},
			Reconcilable: cf.Reconcilable,
		}
		for _, claim := range cf.Claims {
			key := fmt.Sprintf("%v", fromValue(claim.Value))
			c.Values[key] = append(c.Values[key], claim.Source)
		}
		out = append(out, c)
	}
	return out
}

// Discover runs the paper's random-walk discovery (FS.6: "formulate the
// discovery and refinement process as a random walk problem") from the
// named seed entity: a seeded walk biased toward unvisited neighbors,
// returning the labels of discovered entities in first-visit order.
// Deterministic per seed.
func (db *DB) Discover(entity string, steps int, seed int64) ([]string, error) {
	e, ok := db.inner.LookupEntity("", entity)
	if !ok {
		return nil, fmt.Errorf("scdb: unknown entity %q", entity)
	}
	var out []string
	for _, id := range db.inner.Refiner().RandomWalk(e.ID, steps, seed) {
		out = append(out, db.entityLabel(id))
	}
	return out, nil
}

// CrowdAnswer reports a crowd-resolved claim conflict.
type CrowdAnswer struct {
	Value     any
	Agreement float64
	Asks      int
	Spent     float64
}

// CrowdResolve asks a simulated crowd (FS.8) to pick among the distinct
// claimed values for (entity, attr), spending at most budget unit-cost
// asks with workers of the given accuracy. The simulation treats the
// richness-weighted fusion winner as ground truth — the crowd checks
// fusion's work. Deterministic per seed.
func (db *DB) CrowdResolve(entity, attr string, budget, workerAccuracy float64, seed int64) (CrowdAnswer, error) {
	e, ok := db.inner.LookupEntity("", entity)
	if !ok {
		return CrowdAnswer{}, fmt.Errorf("scdb: unknown entity %q", entity)
	}
	out, err := db.inner.CrowdResolve(e.ID, attr, budget, workerAccuracy, seed, -1)
	if err != nil {
		return CrowdAnswer{}, err
	}
	return CrowdAnswer{
		Value:     fromValue(out.Value),
		Agreement: out.Agreement,
		Asks:      out.Asks,
		Spent:     out.Spent,
	}, nil
}

// SuggestedLink is one predicted edge.
type SuggestedLink struct {
	From       string
	Predicate  string
	To         string
	Confidence float64
}

// SuggestLinks proposes up to k missing pred-edges from the named entity,
// learned from co-occurrence patterns in the curated graph (FS.4).
// Suggestions are never certainties; their confidence is below 1.
func (db *DB) SuggestLinks(entity, predicate string, k int) ([]SuggestedLink, error) {
	e, ok := db.inner.LookupEntity("", entity)
	if !ok {
		return nil, fmt.Errorf("scdb: unknown entity %q", entity)
	}
	var out []SuggestedLink
	for _, s := range db.inner.SuggestLinks(e.ID, predicate, k) {
		out = append(out, SuggestedLink{
			From:       db.entityLabel(s.From),
			Predicate:  s.Predicate,
			To:         db.entityLabel(s.To),
			Confidence: float64(s.Confidence),
		})
	}
	return out, nil
}

// EnrichPredictedLinks materializes link predictions with confidence at
// least minConf as real (confidence-weighted, source "predicted") edges
// and re-runs inference over the touched entities. It returns how many
// edges were added. This is enrichment without any client write — the
// non-determinism the Snapshot isolation level aborts on and
// EventualEnrichment tolerates.
func (db *DB) EnrichPredictedLinks(predicate string, perEntity int, minConf float64) (int, error) {
	return db.inner.EnrichPredictedLinks(predicate, perEntity, model.Fuzzy(minConf))
}

// AttrInfo describes one attribute of a table's observed union schema.
type AttrInfo struct {
	Name string
	// Kinds counts the value kinds observed per attribute (heterogeneity
	// is recorded, not rejected).
	Kinds map[string]int
	// Filled counts records with a non-null value.
	Filled int
}

// Schema returns the observed union schema of a table — the catalog's
// no-DDL view of what arrived.
func (db *DB) Schema(table string) []AttrInfo {
	var out []AttrInfo
	for _, a := range db.inner.Catalog().Schema(table) {
		info := AttrInfo{Name: a.Name, Filled: a.Filled, Kinds: map[string]int{}}
		for k, n := range a.Kinds {
			info.Kinds[k] = n
		}
		out = append(out, info)
	}
	return out
}

// Tables returns every table in the store, system tables included.
func (db *DB) Tables() []string { return db.inner.Store().Tables() }

// IndexStat describes one secondary index: where it lives, its kind
// ("hash" or "sorted"), how many postings it holds, and how many scans it
// has served. Auto reports whether the curator created it from observed
// access patterns (auto indexes are dropped again when they go cold).
type IndexStat struct {
	Table   string
	Attr    string
	Kind    string
	Entries int
	Hits    uint64
	Auto    bool
}

// IndexStats lists every secondary index in the store, sorted by table
// then attribute. Indexes are self-curated — created from observed query
// predicates and dropped when cold — so this is an observation of the
// database's current adaptation, not a DDL catalog.
func (db *DB) IndexStats() []IndexStat {
	var out []IndexStat
	for _, s := range db.inner.IndexStats() {
		out = append(out, IndexStat{
			Table:   s.Table,
			Attr:    s.Attr,
			Kind:    s.Kind,
			Entries: s.Entries,
			Hits:    s.Hits,
			Auto:    s.Auto,
		})
	}
	return out
}

// PlanCacheStats reports plan-cache effectiveness: hits, misses, and the
// number of cached plans currently held.
type PlanCacheStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

// PlanCacheStats returns the plan cache's hit/miss counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	s := db.inner.PlanCacheStats()
	return PlanCacheStats{Hits: s.Hits, Misses: s.Misses, Size: s.Size}
}

// WALStats is a readout of the durability log's counters: frames and
// bytes appended, fsync calls and time spent inside them, and — under the
// group sync policy — how long committers waited for durability; plus the
// segmented log's shape (segment files on disk, active segment index) and
// the incremental-checkpoint counters (checkpoints completed, latest
// snapshot CSN, sealed-segment bytes reclaimed, cumulative snapshot-write
// time) and how long the last Open spent recovering. All zeros for an
// in-memory database.
type WALStats struct {
	Frames     uint64
	Bytes      uint64
	Fsyncs     uint64
	FsyncTime  time.Duration
	Commits    uint64
	CommitWait time.Duration

	Segments            int
	SegmentIndex        uint64
	Checkpoints         uint64
	CheckpointCSN       uint64
	CheckpointReclaimed uint64
	CheckpointTime      time.Duration
	RecoveryTime        time.Duration

	// DurableCSN is the highest commit stamp known to be on stable storage;
	// AllocatedCSN is the current commit clock. Their gap is the crash-loss
	// window, and replication watermarks use the same stamps.
	DurableCSN   uint64
	AllocatedCSN uint64
}

// WALStats reports the write-ahead log's durability counters.
func (db *DB) WALStats() WALStats {
	s := db.inner.WALStats()
	return WALStats{
		Frames:     s.Frames,
		Bytes:      s.Bytes,
		Fsyncs:     s.Fsyncs,
		FsyncTime:  s.FsyncTime,
		Commits:    s.Commits,
		CommitWait: s.CommitWait,

		Segments:            s.Segments,
		SegmentIndex:        s.SegmentIndex,
		Checkpoints:         s.Checkpoints,
		CheckpointCSN:       s.CheckpointCSN,
		CheckpointReclaimed: s.CheckpointReclaimed,
		CheckpointTime:      s.CheckpointTime,
		RecoveryTime:        s.RecoveryTime,

		DurableCSN:   s.DurableCSN,
		AllocatedCSN: s.AllocatedCSN,
	}
}

// Checkpoint writes an incremental snapshot of the durable store at a
// consistent commit stamp — ingest continues concurrently — and retires
// sealed log segments the snapshot covers, bounding recovery time. The
// background checkpointer runs this automatically once CheckpointBytes of
// log have accumulated; calling it manually is always safe. It is a no-op
// for in-memory databases.
func (db *DB) Checkpoint() error {
	// A replica's catalog rows are the primary's — flushing local counts
	// would append local frames and corrupt the replicated clock.
	if !db.inner.ReadOnly() {
		if err := db.inner.Catalog().Flush(); err != nil {
			return err
		}
	}
	return db.inner.Store().Checkpoint()
}

// Vacuum drops record versions that are invisible to every live
// transaction and every future reader, reclaiming memory. Returns the
// number of versions removed. Versions a live snapshot transaction can
// still see are kept.
func (db *DB) Vacuum() int {
	return db.inner.Vacuum()
}
