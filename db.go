package scdb

import (
	"context"
	"fmt"
	"strings"

	"scdb/internal/core"
	"scdb/internal/curate"
	"scdb/internal/datagen"
	"scdb/internal/er"
	"scdb/internal/extract"
	"scdb/internal/fusion"
	"scdb/internal/model"
	"scdb/internal/storage"
	"scdb/internal/txn"
)

// Options configures Open. The zero value is a usable in-memory database.
type Options struct {
	// Dir enables durability: the store keeps an append-only log and
	// snapshots there. Empty means in-memory.
	Dir string
	// Axioms seeds the ontology, one axiom per line:
	//
	//	concept C          declare a concept
	//	sub C D            C ⊑ D
	//	disjoint C D       C and D share no instances
	//	exists C R D       C ⊑ ∃R.D
	//	subrole R P        R ⊑ P
	//	trans R            R is transitive
	//	inverse R S        R and S are inverses
	//	domain R C         subjects of R are C
	//	range R C          objects of R are C
	//
	// Multi-word names use underscores ("Approved_Drugs").
	Axioms string
	// LinkRules drive online literal-to-entity link discovery.
	LinkRules []LinkRule
	// Patterns drive information extraction over Source.Texts.
	Patterns []Pattern
	// ResolutionThreshold tunes entity resolution (default 0.85).
	ResolutionThreshold float64
	// ERBlocking selects the entity-resolution candidate-generation
	// strategy: "token" (token-prefix blocks, the default), "ann"
	// (feature-hashed embedding index, top-K cosine neighbors — bounded
	// cost per entity, robust to leading-character typos), or "both"
	// (union of the two, maximum recall). Results change only in which
	// duplicate pairs are discovered; see DESIGN.md.
	ERBlocking string
	// ERTopK is the ANN neighbor count per arriving entity under "ann" or
	// "both" blocking (<=0 = default 8).
	ERTopK int
	// EREmbedDim is the feature-hashed embedding width under "ann" or
	// "both" blocking (<=0 = default 64).
	EREmbedDim int
	// CacheSize bounds the materialization cache (default 256 entries).
	CacheSize int
	// DisableSemanticOptimizer turns the ontology-driven query rewrites
	// off (for ablation measurements).
	DisableSemanticOptimizer bool
	// DisableCache turns result materialization off.
	DisableCache bool
	// Parallelism sizes the morsel-driven query executor's worker pool.
	// <=0 uses one worker per CPU; 1 executes queries serially. Query
	// results are identical for every setting.
	Parallelism int
	// MorselSize overrides the executor's rows-per-morsel granule (<=0 =
	// default 1024). Smaller morsels mean finer-grained cancellation at
	// some dispatch overhead; results are identical for every setting.
	MorselSize int
	// Sync selects the WAL durability policy for durable databases (Dir
	// set); in-memory databases ignore it. State is identical for every
	// setting — only the crash window differs.
	Sync SyncPolicy
	// IngestBatchSize chunks Ingest's instance-layer writes: each chunk
	// pays one table latch, one index pass, and one log frame. <=0 uses
	// the default (1024); 1 writes per record. Results are identical for
	// every setting.
	IngestBatchSize int
	// IngestParallelism sizes Ingest's record-decode worker pool (<=0 =
	// one per CPU; 1 = serial). Results are identical for every setting.
	IngestParallelism int
	// PlanCacheSize bounds the optimized-plan cache, keyed by statement
	// text at a given schema and ontology version (<=0 = default 256).
	// Results are identical for every setting; only re-planning cost
	// differs.
	PlanCacheSize int
	// WALSegmentBytes is the log segment rotation threshold for durable
	// databases (0 = 16 MiB). Appends crossing it seal the active segment
	// file and open the next; checkpoints delete sealed segments they
	// cover.
	WALSegmentBytes int64
	// CheckpointBytes triggers an automatic incremental checkpoint after
	// that many log bytes since the last one (0 = 64 MiB, negative
	// disables automatic checkpoints; Checkpoint still works manually).
	CheckpointBytes int64
	// RecoverParallelism sizes recovery's worker pools for snapshot
	// loading, log replay, and index rebuild (0 = one per CPU, 1 =
	// serial). Recovered state is identical for every setting.
	RecoverParallelism int
	// ReadOnly opens the database as a read replica: Ingest and AddClaim
	// return ErrReadOnly, and nothing is ever written locally except
	// replicated log frames applied through the replication plumbing
	// (repl.go). Requires Dir.
	ReadOnly bool
}

// SyncPolicy selects when a durable database's committed log frames reach
// stable storage.
type SyncPolicy int

const (
	// SyncNone buffers log frames in user space; they reach disk on
	// checkpoint and close. Fastest; a crash loses the buffered tail.
	SyncNone SyncPolicy = iota
	// SyncGroup makes every commit wait for a shared flush+fsync:
	// concurrent commits coalesce into one disk round-trip (group commit).
	SyncGroup
	// SyncAlways flushes and fsyncs inline on every commit.
	SyncAlways
)

// ParseSyncPolicy maps the flag spelling ("none", "group", "always") to a
// policy; "" means SyncNone.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	p, err := storage.ParseSyncPolicy(s)
	return SyncPolicy(p), err
}

// String names the policy as ParseSyncPolicy spells it.
func (p SyncPolicy) String() string { return storage.SyncPolicy(p).String() }

// DB is a self-curating database handle.
type DB struct {
	inner *core.DB
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	blocking, err := er.ParseBlocking(opts.ERBlocking)
	if err != nil {
		return nil, err
	}
	coreOpts := core.Options{
		Dir:                opts.Dir,
		MatCacheSize:       opts.CacheSize,
		DisableSemanticOpt: opts.DisableSemanticOptimizer,
		DisableMatCache:    opts.DisableCache,
		Parallelism:        opts.Parallelism,
		MorselSize:         opts.MorselSize,
		Sync:               storage.SyncPolicy(opts.Sync),
		IngestBatchSize:    opts.IngestBatchSize,
		IngestParallelism:  opts.IngestParallelism,
		PlanCacheSize:      opts.PlanCacheSize,
		WALSegmentBytes:    opts.WALSegmentBytes,
		CheckpointBytes:    opts.CheckpointBytes,
		RecoverParallelism: opts.RecoverParallelism,
		ReadOnly:           opts.ReadOnly,
		ERConfig: er.Config{
			Threshold: opts.ResolutionThreshold,
			Blocking:  blocking,
			TopK:      opts.ERTopK,
			EmbedDim:  opts.EREmbedDim,
		},
	}
	for _, r := range opts.LinkRules {
		coreOpts.LinkRules = append(coreOpts.LinkRules, curate.LinkRule{
			Predicate:     r.Predicate,
			EdgePredicate: r.EdgePredicate,
			TargetAttrs:   r.TargetAttrs,
			TargetType:    r.TargetType,
		})
	}
	for _, p := range opts.Patterns {
		coreOpts.Patterns = append(coreOpts.Patterns, extract.Pattern{
			Trigger:        p.Trigger,
			Predicate:      p.Predicate,
			SubjectConcept: p.SubjectConcept,
			ObjectConcept:  p.ObjectConcept,
		})
	}
	db, err := core.Open(coreOpts)
	if err != nil {
		return nil, err
	}
	if opts.Axioms != "" {
		if err := db.Ontology().Parse(strings.NewReader(opts.Axioms)); err != nil {
			db.Close()
			return nil, err
		}
	}
	return &DB{inner: db}, nil
}

// Close flushes meta-data and closes the store.
func (db *DB) Close() error { return db.inner.Close() }

// AddAxioms appends ontology axioms (same format as Options.Axioms).
// Curation picks them up on the next ingest; existing inferences are
// re-derived lazily.
func (db *DB) AddAxioms(axioms string) error {
	return db.inner.Ontology().Parse(strings.NewReader(axioms))
}

// Ingest runs one source delivery through the curation pipeline:
// instance-layer storage, schema observation, entity/edge creation, link
// discovery, incremental entity resolution, information extraction, and
// incremental semantic inference.
func (db *DB) Ingest(src Source) error {
	return db.IngestCtx(context.Background(), src)
}

// IngestCtx is Ingest with an observability scope: a context carrying a
// trace (as created by the service layer for traced ingest requests)
// receives per-stage spans for the curation pass — decode fan-out, batch
// install with WAL fsync wait, relation/ER, integration, and incremental
// inference. Cancellation is not observed mid-pass; a delivery lands
// atomically with respect to curation state.
func (db *DB) IngestCtx(ctx context.Context, src Source) error {
	ds, err := toDataset(src)
	if err != nil {
		return err
	}
	return db.inner.IngestCtx(ctx, ds)
}

func toDataset(src Source) (datagen.Dataset, error) {
	if src.Name == "" {
		return datagen.Dataset{}, fmt.Errorf("scdb: source needs a name")
	}
	ds := datagen.Dataset{Source: src.Name, Texts: src.Texts}
	for _, e := range src.Entities {
		attrs, err := toRecord(e.Attrs)
		if err != nil {
			return datagen.Dataset{}, fmt.Errorf("scdb: entity %q: %w", e.Key, err)
		}
		ds.Entities = append(ds.Entities, datagen.EntitySpec{Key: e.Key, Types: e.Types, Attrs: attrs})
	}
	for _, l := range src.Links {
		var lit model.Value
		if l.ToKey == "" {
			v, err := toValue(l.Value)
			if err != nil {
				return datagen.Dataset{}, fmt.Errorf("scdb: link %s-[%s]: %w", l.FromKey, l.Predicate, err)
			}
			lit = v
		}
		ds.Links = append(ds.Links, datagen.LinkSpec{
			FromKey:    l.FromKey,
			Predicate:  l.Predicate,
			ToKey:      l.ToKey,
			Literal:    lit,
			Confidence: l.Confidence,
		})
	}
	return ds, nil
}

// Rows is a materialized query result with public values.
type Rows struct {
	Columns []string
	Data    [][]any
}

// QueryInfo reports how a query was answered.
type QueryInfo struct {
	// Plan is the optimized plan tree, one node per line.
	Plan string
	// Rules lists optimizer rewrites applied.
	Rules []string
	// CacheHit reports whether a materialized result was reused.
	CacheHit bool
	// PlanCached reports whether the optimized plan was reused from the
	// plan cache (parsing and optimization skipped; the statement still
	// executed, unlike CacheHit).
	PlanCached bool
	// EstimatedCost is the optimizer's work estimate for the plan.
	EstimatedCost float64
	// OperatorStats is the per-operator runtime profile (rows in/out,
	// morsels, wall time) of the executed plan, rendered as a tree — the
	// same text EXPLAIN ANALYZE returns. Empty for cache hits.
	OperatorStats string
}

// Query executes one SCQL statement.
func (db *DB) Query(q string) (*Rows, error) {
	rows, _, err := db.QueryInfo(q)
	return rows, err
}

// QueryCtx executes one SCQL statement under the context: when ctx is
// canceled or its deadline expires, the executor's workers stop within one
// morsel boundary, storage scans stop producing, and the context's error
// is returned. This is the entry point for servers and other callers that
// need per-request deadlines.
func (db *DB) QueryCtx(ctx context.Context, q string) (*Rows, error) {
	rows, _, err := db.QueryInfoCtx(ctx, q)
	return rows, err
}

// QueryInfo executes one SCQL statement and reports how it was answered.
func (db *DB) QueryInfo(q string) (*Rows, *QueryInfo, error) {
	return db.QueryInfoCtx(context.Background(), q)
}

// QueryInfoCtx is QueryInfo with cancellation (see QueryCtx).
func (db *DB) QueryInfoCtx(ctx context.Context, q string) (*Rows, *QueryInfo, error) {
	res, info, err := db.inner.QueryCtx(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	out := &Rows{Columns: res.Columns}
	for _, r := range res.Rows {
		row := make([]any, len(r))
		for i, v := range r {
			row[i] = fromValue(v)
		}
		out.Data = append(out.Data, row)
	}
	pub := &QueryInfo{
		Plan:          info.Plan,
		Rules:         info.Rules,
		CacheHit:      info.CacheHit,
		PlanCached:    info.PlanCached,
		EstimatedCost: info.EstimatedCost,
	}
	if info.OperatorStats != nil {
		pub.OperatorStats = info.OperatorStats.Render()
	}
	return out, pub, nil
}

// QueryBatchesCtx executes one statement and streams its result rows to
// emit in columnar batches as they drain off the morsel executor, without
// materializing the public row set first. The batch values are the
// engine's internal representation (model.Value) — this is the
// zero-conversion path the network service layer encodes from; embedded
// applications should use QueryCtx. cols is identical on every call and
// also returned (a statement with no rows never calls emit). emit
// returning false aborts the statement. Emitted row slices are shared
// with the result cache and must not be mutated.
func (db *DB) QueryBatchesCtx(ctx context.Context, q string, emit func(cols []string, batch [][]model.Value) bool) ([]string, *QueryInfo, error) {
	cols, info, err := db.inner.QueryStreamCtx(ctx, q, emit)
	if err != nil {
		return nil, nil, err
	}
	pub := &QueryInfo{
		Plan:          info.Plan,
		Rules:         info.Rules,
		CacheHit:      info.CacheHit,
		PlanCached:    info.PlanCached,
		EstimatedCost: info.EstimatedCost,
	}
	if info.OperatorStats != nil {
		pub.OperatorStats = info.OperatorStats.Render()
	}
	return cols, pub, nil
}

// Explain returns the optimized plan without executing.
func (db *DB) Explain(q string) (*QueryInfo, error) {
	info, err := db.inner.Explain(q)
	if err != nil {
		return nil, err
	}
	return &QueryInfo{Plan: info.Plan, Rules: info.Rules, EstimatedCost: info.EstimatedCost}, nil
}

// AddClaim records a parallel-world claim. The entity is looked up by any
// indexed name or key.
func (db *DB) AddClaim(c Claim) error {
	if db.inner.ReadOnly() {
		return ErrReadOnly
	}
	e, ok := db.inner.LookupEntity("", c.Entity)
	if !ok {
		return fmt.Errorf("scdb: claim about unknown entity %q", c.Entity)
	}
	v, err := toValue(c.Value)
	if err != nil {
		return err
	}
	db.inner.AddClaim(fusion.Claim{
		Source:     c.Source,
		Entity:     e.ID,
		Attr:       c.Attr,
		Value:      v,
		Context:    c.Context,
		Confidence: model.Fuzzy(c.Confidence),
	})
	return nil
}

// RefreshRichness measures every source's richness (information content,
// connectivity, density — FS.2) and uses the scores to weight claims in
// fusion. It returns source → score.
func (db *DB) RefreshRichness() map[string]float64 {
	out := map[string]float64{}
	for _, m := range db.inner.RefreshRichness() {
		out[m.Source] = m.Score
	}
	return out
}

// Answer is the outcome of the context-aware query loop.
type Answer struct {
	// NaiveCertain is the classical certain answer (all worlds agree).
	NaiveCertain bool
	// JustifiedDegree is the parallel-world justification in [0,1].
	JustifiedDegree float64
	// Explanation names the supporting context and sources.
	Explanation string
	// ByContext gives each context class's degree.
	ByContext map[string]float64
	// Refinements lists the follow-up questions the system raised.
	Refinements []string
	// Sensitive reports whether the attribute varies across disjoint
	// context classes; NarrowRange whether its values span a narrow band.
	Sensitive   bool
	NarrowRange bool
}

// JustifiedAnswer runs the paper's context-aware loop for "is target an
// acceptable value of attr for this entity?": the naive certain answer,
// the automatically raised refinements, and the justified parallel-world
// answer under fuzzy closeness with tolerance tol.
func (db *DB) JustifiedAnswer(entity, attr string, target, tol float64) (Answer, error) {
	ca, err := db.inner.JustifiedAnswer(entity, attr, target, tol)
	if err != nil {
		return Answer{}, err
	}
	out := Answer{
		NaiveCertain:    ca.NaiveCertain,
		JustifiedDegree: float64(ca.Justified.Degree),
		Explanation:     ca.Justified.Explanation,
		ByContext:       map[string]float64{},
		Sensitive:       ca.Sensitive,
		NarrowRange:     ca.NarrowRange,
	}
	for ctx, d := range ca.Justified.ByContext {
		out.ByContext[ctx] = float64(d)
	}
	for _, r := range ca.Refinements {
		out.Refinements = append(out.Refinements, r.Question)
	}
	return out, nil
}

// ErrConflict is returned by Tx.Commit on a write-write conflict
// (first-committer-wins).
var ErrConflict = txn.ErrConflict

// ErrEnrichmentPhantom is returned by Tx.Commit under Snapshot isolation
// when the semantic layers changed under a transaction that read them.
var ErrEnrichmentPhantom = txn.ErrEnrichmentPhantom

// IsolationLevel selects transaction semantics.
type IsolationLevel int

const (
	// Snapshot is snapshot isolation with enrichment-phantom aborts: a
	// transaction that consulted the semantic layers aborts if enrichment
	// advanced under it.
	Snapshot IsolationLevel = iota
	// EventualEnrichment never aborts on enrichment churn; commits carry
	// a staleness bound instead.
	EventualEnrichment
)

// Tx is a transaction over the instance layer.
type Tx struct {
	inner *txn.Txn
}

// Begin starts a transaction.
func (db *DB) Begin(level IsolationLevel) *Tx {
	l := txn.Snapshot
	if level == EventualEnrichment {
		l = txn.EventualEnrichment
	}
	return &Tx{inner: db.inner.Begin(l)}
}

// Insert buffers a row; the returned ID is final and remains valid after
// commit.
func (tx *Tx) Insert(table string, rec Record) (uint64, error) {
	r, err := toRecord(rec)
	if err != nil {
		return 0, err
	}
	id, err := tx.inner.Insert(table, r)
	return uint64(id), err
}

// Update buffers an overwrite.
func (tx *Tx) Update(table string, id uint64, rec Record) error {
	r, err := toRecord(rec)
	if err != nil {
		return err
	}
	return tx.inner.Update(table, storage.RowID(id), r)
}

// Delete buffers a deletion.
func (tx *Tx) Delete(table string, id uint64) error {
	return tx.inner.Delete(table, storage.RowID(id))
}

// Get reads at the transaction's snapshot, own writes included.
func (tx *Tx) Get(table string, id uint64) (Record, bool, error) {
	rec, ok, err := tx.inner.Get(table, storage.RowID(id))
	if err != nil || !ok {
		return nil, ok, err
	}
	out := Record{}
	for k, v := range rec {
		out[k] = fromValue(v)
	}
	return out, true, nil
}

// MarkSemanticRead records that the transaction consulted the semantic
// layers (arming enrichment-phantom validation under Snapshot).
func (tx *Tx) MarkSemanticRead() { tx.inner.MarkSemanticRead() }

// Commit validates and installs the write set. The returned staleness is
// how many enrichment versions passed during the transaction (always 0
// under Snapshot).
func (tx *Tx) Commit() (staleness uint64, err error) {
	info, err := tx.inner.Commit()
	if err != nil {
		return 0, err
	}
	return info.EnrichmentStaleness, nil
}

// Abort discards the transaction.
func (tx *Tx) Abort() { tx.inner.Abort() }

// ERStats reports entity-resolution work counters — the cost side of
// curation that Merges alone hides.
type ERStats struct {
	// Comparisons counts candidate pairs scored since open.
	Comparisons int
	// Candidates counts candidate pairs gathered by blocking/ANN before
	// cluster filtering.
	Candidates int
	// ANNProbes counts embedding-index bucket members examined during
	// top-K rerank (zero under "token" blocking).
	ANNProbes int
	// Blocks is the number of distinct token blocking keys indexed.
	Blocks int
	// BlockSkips counts candidate slots dropped by the per-key block cap
	// (oversized, stop-word-like blocks).
	BlockSkips int
}

// Stats summarizes the engine.
type Stats struct {
	Tables          int
	Entities        int
	Edges           int
	Concepts        int
	InferredTypes   int
	Witnesses       int
	Inconsistencies int
	Merges          int
	CacheHitRate    float64
	ER              ERStats
}

// Stats returns a snapshot of the engine's state.
func (db *DB) Stats() Stats {
	s := db.inner.Stats()
	return Stats{
		Tables:          s.Tables,
		Entities:        s.Entities,
		Edges:           s.Edges,
		Concepts:        s.Concepts,
		InferredTypes:   s.InferredTypes,
		Witnesses:       s.Witnesses,
		Inconsistencies: s.Inconsistencies,
		Merges:          s.Merges,
		CacheHitRate:    s.CacheHitRate,
		ER: ERStats{
			Comparisons: s.ER.Comparisons,
			Candidates:  s.ER.Candidates,
			ANNProbes:   s.ER.ANNProbes,
			Blocks:      s.ER.Blocks,
			BlockSkips:  s.ER.BlockSkips,
		},
	}
}

// Witness is an inferred existential: the entity must have Role to some
// instance of Filler although no concrete edge is known (the paper's
// Acetaminophen example).
type Witness struct {
	Entity  string
	Role    string
	Filler  string
	Because string
}

// Witnesses returns all current existential witnesses, with entities
// rendered by their best-known name.
func (db *DB) Witnesses() []Witness {
	var out []Witness
	for _, w := range db.inner.Reasoner().AllWitnesses() {
		out = append(out, Witness{
			Entity:  db.entityLabel(w.Entity),
			Role:    w.Role,
			Filler:  w.Filler,
			Because: w.Because,
		})
	}
	return out
}

// Inconsistencies returns current semantic inconsistencies as
// human-readable strings.
func (db *DB) Inconsistencies() []string {
	var out []string
	for _, ic := range db.inner.Reasoner().Inconsistencies() {
		out = append(out, fmt.Sprintf("%s belongs to disjoint concepts %q and %q",
			db.entityLabel(ic.Entity), ic.ConceptA, ic.ConceptB))
	}
	return out
}

func (db *DB) entityLabel(id model.EntityID) string {
	e, ok := db.inner.Graph().Entity(id)
	if !ok {
		return fmt.Sprintf("entity(%d)", id)
	}
	for _, attr := range []string{"name", "symbol", "label", "disease_name", "gene_symbol"} {
		if s, ok := e.Attrs.Get(attr).AsString(); ok && s != "" {
			return s
		}
	}
	return e.Key
}
